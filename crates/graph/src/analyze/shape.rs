//! Interprocedural abstract shape and dtype inference.
//!
//! Shapes live in a three-level lattice per dimension — `Known(n)` ⊑
//! `Sym(k)`/`Top` — lifted to whole shapes as `Bottom ⊑ Dims([...]) ⊑ Top`.
//! `Bottom` means "no value has reached this port yet" (the initial state,
//! and the permanent state of ports inside unreached SubGraphs), `Top`
//! means "any shape". Symbolic dims are minted for runtime-determined
//! extents (`ZerosDyn` row counts) so that a dynamic dimension still
//! *propagates as one identity* instead of collapsing to ⊤.
//!
//! Inference runs as a fixpoint: call-site argument shapes are joined into
//! each SubGraph's formal-input summary, bodies are re-evaluated, and
//! `Invoke`/`Cond` output ports pick up the callee's output summaries.
//! Every stored cell is only ever raised via the lattice join, so the
//! iteration terminates (the lattice has finite height and there are
//! finitely many cells). Diagnostics are collected in a single reporting
//! pass *after* the fixpoint stabilizes, so a transiently unknown shape
//! never produces a spurious finding and no finding is reported twice.
//!
//! A mismatch is an **error only when definite**: two `Known` extents that
//! differ, a rank that a kernel can never accept, a dtype the op cannot
//! take. Anything involving `Sym`/`Top` stays silent — the analysis is
//! deliberately may-style so that shipped recursive models (whose state
//! tensors have genuinely dynamic row counts) produce zero false positives.

use super::{codes, node_diag, Diagnostic, Severity};
use crate::graph::{Graph, NodeId};
use crate::module::{GraphRef, Module};
use crate::op::OpKind;
use crate::subgraph::SubGraphId;
use rdg_tensor::DType;
use std::collections::HashMap;
use std::fmt;

/// One abstract dimension extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbsDim {
    /// Statically known extent.
    Known(usize),
    /// Runtime-determined extent with a stable identity (symbol `k`).
    Sym(u32),
    /// Unknown extent.
    Top,
}

impl AbsDim {
    /// Lattice join: equal values are preserved, anything else is ⊤.
    pub fn join(self, other: AbsDim) -> AbsDim {
        if self == other {
            self
        } else {
            AbsDim::Top
        }
    }

    /// The statically known extent, if any.
    pub fn known(self) -> Option<usize> {
        match self {
            AbsDim::Known(n) => Some(n),
            _ => None,
        }
    }

    /// Refinement for dims that *must* be equal at run time: prefer the
    /// more precise side (`Known` over `Sym` over `Top`).
    fn prefer_known(self, other: AbsDim) -> AbsDim {
        match (self, other) {
            (AbsDim::Known(_), _) => self,
            (_, AbsDim::Known(_)) => other,
            (AbsDim::Sym(_), _) => self,
            (_, AbsDim::Sym(_)) => other,
            _ => AbsDim::Top,
        }
    }

    /// `true` only when both extents are `Known` and differ — the sole
    /// situation where equality is definitely violated.
    fn conflicts(self, other: AbsDim) -> bool {
        matches!((self, other), (AbsDim::Known(a), AbsDim::Known(b)) if a != b)
    }
}

impl fmt::Display for AbsDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsDim::Known(n) => write!(f, "{n}"),
            AbsDim::Sym(k) => write!(f, "s{k}"),
            AbsDim::Top => write!(f, "?"),
        }
    }
}

/// One abstract tensor shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AbsShape {
    /// No value has reached this port (unreached code).
    Bottom,
    /// A tensor of this rank with the given per-dimension extents.
    Dims(Vec<AbsDim>),
    /// Any shape.
    Top,
}

impl AbsShape {
    /// Abstract shape of a concrete tensor shape.
    pub fn from_dims(dims: &[usize]) -> AbsShape {
        AbsShape::Dims(dims.iter().map(|&d| AbsDim::Known(d)).collect())
    }

    /// The scalar shape `[]`.
    pub fn scalar() -> AbsShape {
        AbsShape::Dims(Vec::new())
    }

    /// Lattice join.
    pub fn join(&self, other: &AbsShape) -> AbsShape {
        match (self, other) {
            (AbsShape::Bottom, x) | (x, AbsShape::Bottom) => x.clone(),
            (AbsShape::Top, _) | (_, AbsShape::Top) => AbsShape::Top,
            (AbsShape::Dims(a), AbsShape::Dims(b)) => {
                if a.len() != b.len() {
                    AbsShape::Top
                } else {
                    AbsShape::Dims(a.iter().zip(b).map(|(&x, &y)| x.join(y)).collect())
                }
            }
        }
    }

    /// `true` when every extent is statically known.
    pub fn fully_known(&self) -> bool {
        match self {
            AbsShape::Dims(d) => d.iter().all(|x| x.known().is_some()),
            _ => false,
        }
    }

    /// Element count, when every extent is known.
    pub fn numel(&self) -> Option<usize> {
        match self {
            AbsShape::Dims(d) => d.iter().try_fold(1usize, |acc, x| Some(acc * x.known()?)),
            _ => None,
        }
    }

    /// `true` when the value *might* be scalar-like (`numel == 1`) at run
    /// time — i.e. broadcastable under the elementwise kernels.
    fn could_be_scalar(&self) -> bool {
        match self {
            AbsShape::Bottom | AbsShape::Top => true,
            AbsShape::Dims(d) => d.iter().all(|x| x.known().is_none_or(|n| n == 1)),
        }
    }
}

impl fmt::Display for AbsShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsShape::Bottom => write!(f, "⊥"),
            AbsShape::Top => write!(f, "⊤"),
            AbsShape::Dims(d) => {
                write!(f, "[")?;
                for (i, x) in d.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// A matrix view of an abstract shape, mirroring `Shape::as_matrix`:
/// rank-1 `[n]` is a single row, rank 0 and rank > 2 are never matrices.
enum Mat {
    /// The shape is ⊤/⊥ — could be anything.
    Unknown,
    /// Definitely not viewable as a matrix.
    Bad,
    /// Rows and columns.
    Rc(AbsDim, AbsDim),
}

fn mat(s: &AbsShape) -> Mat {
    match s {
        AbsShape::Bottom | AbsShape::Top => Mat::Unknown,
        AbsShape::Dims(d) => match d.len() {
            1 => Mat::Rc(AbsDim::Known(1), d[0]),
            2 => Mat::Rc(d[0], d[1]),
            _ => Mat::Bad,
        },
    }
}

/// Inferred shapes for every output port of every node in a module.
pub struct ShapeMap {
    /// `graphs[0]` is main; `graphs[1 + k]` is SubGraph `k`. Inner index:
    /// `[node][out_port]`.
    graphs: Vec<Vec<Vec<AbsShape>>>,
}

impl ShapeMap {
    fn slot(gref: GraphRef) -> usize {
        match gref {
            GraphRef::Main => 0,
            GraphRef::Sub(SubGraphId(k)) => 1 + k as usize,
        }
    }

    /// Shape of one output port.
    pub fn get(&self, gref: GraphRef, node: NodeId, port: u16) -> &AbsShape {
        &self.graphs[Self::slot(gref)][node.0 as usize][port as usize]
    }

    /// Per-node, per-port shapes for one graph.
    pub fn graph_shapes(&self, gref: GraphRef) -> &Vec<Vec<AbsShape>> {
        &self.graphs[Self::slot(gref)]
    }
}

/// The fixpoint engine.
struct Infer<'m> {
    m: &'m Module,
    /// Stored output shapes, join-accumulated: `[slot][node][port]`.
    shapes: Vec<Vec<Vec<AbsShape>>>,
    /// Join of all call-site argument shapes per SubGraph input.
    sub_inputs: Vec<Vec<AbsShape>>,
    /// SubGraphs that at least one evaluated call site targets.
    reached: Vec<bool>,
    /// Pre-minted symbol per `ZerosDyn` node, keyed by `(slot, node)`.
    syms: HashMap<(usize, usize), u32>,
    changed: bool,
}

/// All graphs of a module as `(slot, gref)` pairs, main first.
fn all_graphs(m: &Module) -> Vec<(usize, GraphRef)> {
    let mut v = vec![(0usize, GraphRef::Main)];
    for k in 0..m.subgraphs.len() {
        v.push((1 + k, GraphRef::Sub(SubGraphId(k as u32))));
    }
    v
}

impl<'m> Infer<'m> {
    fn new(m: &'m Module) -> Self {
        let mut shapes = Vec::new();
        let mut syms = HashMap::new();
        let mut next_sym = 0u32;
        for (slot, gref) in all_graphs(m) {
            let g = m.graph(gref);
            let mut per_node = Vec::with_capacity(g.len());
            for (i, n) in g.nodes.iter().enumerate() {
                if let OpKind::ZerosDyn { .. } = n.op {
                    syms.insert((slot, i), next_sym);
                    next_sym += 1;
                }
                per_node.push(vec![AbsShape::Bottom; n.op.n_outputs()]);
            }
            shapes.push(per_node);
        }
        let sub_inputs = m
            .subgraphs
            .iter()
            .map(|sg| vec![AbsShape::Bottom; sg.n_inputs()])
            .collect();
        Infer {
            m,
            shapes,
            sub_inputs,
            reached: vec![false; m.subgraphs.len()],
            syms,
            changed: false,
        }
    }

    fn store(&mut self, slot: usize, node: usize, outs: Vec<AbsShape>) {
        for (port, s) in outs.into_iter().enumerate() {
            let cell = &mut self.shapes[slot][node][port];
            let joined = cell.join(&s);
            if *cell != joined {
                *cell = joined;
                self.changed = true;
            }
        }
    }

    fn join_sub_input(&mut self, sub: SubGraphId, index: usize, s: &AbsShape) {
        let cell = &mut self.sub_inputs[sub.0 as usize][index];
        let joined = cell.join(s);
        if *cell != joined {
            *cell = joined;
            self.changed = true;
        }
    }

    fn mark_reached(&mut self, sub: SubGraphId) {
        if !self.reached[sub.0 as usize] {
            self.reached[sub.0 as usize] = true;
            self.changed = true;
        }
    }

    /// Output-port summaries of a SubGraph: the stored shapes of its
    /// declared output ports.
    fn sub_summary(&self, sub: SubGraphId) -> Vec<AbsShape> {
        let slot = 1 + sub.0 as usize;
        let g = &self.m.subgraph(sub).graph;
        g.outputs
            .iter()
            .map(|p| self.shapes[slot][p.node.0 as usize][p.port as usize].clone())
            .collect()
    }

    /// One evaluation sweep over every reached graph, in declaration order.
    fn sweep(&mut self) {
        for (slot, gref) in all_graphs(self.m) {
            if let GraphRef::Sub(id) = gref {
                if !self.reached[id.0 as usize] {
                    continue;
                }
            }
            let g = self.m.graph(gref);
            // Builder-produced graphs are already topologically ordered by
            // construction; evaluating in node order converges in the same
            // number of sweeps as a topo order would for them, and the
            // outer fixpoint covers hand-forged orderings.
            for i in 0..g.len() {
                let ins: Vec<AbsShape> = g.nodes[i]
                    .inputs
                    .iter()
                    .map(|p| self.shapes[slot][p.node.0 as usize][p.port as usize].clone())
                    .collect();
                let (outs, _) = self.transfer(slot, gref, i, &ins, true);
                self.store(slot, i, outs);
            }
        }
    }

    /// The per-op transfer function. Returns one abstract shape per output
    /// port plus any definite-mismatch details (`(ports, message)`).
    /// During the fixpoint (`propagate == true`) call-site argument shapes
    /// are joined into callee summaries; the reporting pass passes `false`
    /// so it is effect-free.
    fn transfer(
        &mut self,
        slot: usize,
        gref: GraphRef,
        node: usize,
        ins: &[AbsShape],
        propagate: bool,
    ) -> (Vec<AbsShape>, Vec<(Vec<u16>, String)>) {
        use AbsShape::{Dims, Top};
        let op = self.m.graph(gref).nodes[node].op.clone();
        let n_out = op.n_outputs();
        let mut diags: Vec<(Vec<u16>, String)> = Vec::new();

        // A Bottom input means the operand's producer has not been reached
        // yet; outputs stay Bottom and nothing is diagnosed. `Input`,
        // `Const`, `Param` and the cache-reading ops have no data inputs
        // and are always evaluated.
        let has_bottom = ins.iter().any(|s| *s == AbsShape::Bottom);

        let mut err = |ports: Vec<u16>, msg: String| -> AbsShape {
            diags.push((ports, msg));
            Top
        };

        let out: Vec<AbsShape> =
            match &op {
                OpKind::Input { index, .. } => {
                    let s = match gref {
                        GraphRef::Main => Top,
                        GraphRef::Sub(id) => self.sub_inputs[id.0 as usize][*index].clone(),
                    };
                    vec![s]
                }
                OpKind::Const(t) => vec![AbsShape::from_dims(t.shape().dims())],
                OpKind::Param(pid) => {
                    vec![AbsShape::from_dims(
                        self.m.params[pid.0 as usize].init.shape().dims(),
                    )]
                }
                OpKind::FwdValue { .. } | OpKind::FwdZeros { .. } => vec![Top],
                _ if has_bottom => vec![AbsShape::Bottom; n_out],

                OpKind::Identity
                | OpKind::Neg
                | OpKind::Scale(_)
                | OpKind::AddConst(_)
                | OpKind::Tanh
                | OpKind::Sigmoid
                | OpKind::Relu
                | OpKind::Softmax
                | OpKind::LogSoftmax
                | OpKind::ZerosLike
                | OpKind::OnesLike => vec![ins[0].clone()],

                OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
                    vec![ew_binary(&ins[0], &ins[1]).unwrap_or_else(|m| err(vec![0, 1], m))]
                }
                OpKind::TanhGrad
                | OpKind::SigmoidGrad
                | OpKind::ReluGrad
                | OpKind::SoftmaxGrad
                | OpKind::LogSoftmaxGrad => {
                    vec![ew_binary(&ins[0], &ins[1]).unwrap_or_else(|m| err(vec![0, 1], m))]
                }
                OpKind::ScalarMul => {
                    if !ins[1].could_be_scalar() {
                        vec![err(
                            vec![1],
                            format!("scale operand must be a scalar, got {}", ins[1]),
                        )]
                    } else {
                        vec![ins[0].clone()]
                    }
                }

                OpKind::MatMul => vec![matmul_like(&ins[0], &ins[1], false, false)
                    .unwrap_or_else(|m| err(vec![0, 1], m))],
                OpKind::MatMulAT => vec![matmul_like(&ins[0], &ins[1], true, false)
                    .unwrap_or_else(|m| err(vec![0, 1], m))],
                OpKind::MatMulBT => vec![matmul_like(&ins[0], &ins[1], false, true)
                    .unwrap_or_else(|m| err(vec![0, 1], m))],

                OpKind::AddBias => {
                    let a = &ins[0];
                    match (mat(a), ins[1].numel()) {
                        (Mat::Bad, _) => vec![err(
                            vec![0],
                            format!("add_bias operand is not a matrix: {a}"),
                        )],
                        (Mat::Rc(_, c), Some(bn)) if c.known().is_some_and(|n| n != bn) => {
                            vec![err(
                                vec![0, 1],
                                format!("bias of {} elements against {} columns ({a})", bn, c),
                            )]
                        }
                        _ => vec![a.clone()],
                    }
                }

                OpKind::Bilinear => {
                    let x = mat(&ins[0]);
                    let (rows, xc) = match x {
                        Mat::Bad => {
                            return (
                                vec![err(
                                    vec![0],
                                    format!("bilinear input is not a matrix: {}", ins[0]),
                                )],
                                diags,
                            )
                        }
                        Mat::Rc(r, c) => (r, c),
                        Mat::Unknown => (AbsDim::Top, AbsDim::Top),
                    };
                    match &ins[1] {
                        Dims(d) if d.len() == 3 => {
                            if d[1].conflicts(d[2]) || d[1].conflicts(xc) || d[2].conflicts(xc) {
                                vec![err(
                                    vec![0, 1],
                                    format!("bilinear V {} vs input {}", ins[1], ins[0]),
                                )]
                            } else {
                                vec![Dims(vec![rows, d[0]])]
                            }
                        }
                        Dims(_) => vec![err(
                            vec![1],
                            format!("bilinear V must be rank-3, got {}", ins[1]),
                        )],
                        _ => vec![Dims(vec![rows, AbsDim::Top])],
                    }
                }

                OpKind::ConcatCols => match (mat(&ins[0]), mat(&ins[1])) {
                    (Mat::Bad, _) | (_, Mat::Bad) => vec![err(
                        vec![0, 1],
                        format!(
                            "concat_cols operands must be matrices: {} / {}",
                            ins[0], ins[1]
                        ),
                    )],
                    (Mat::Rc(r0, c0), Mat::Rc(r1, c1)) => {
                        if r0.conflicts(r1) {
                            vec![err(
                                vec![0, 1],
                                format!("row counts differ: {} vs {}", ins[0], ins[1]),
                            )]
                        } else {
                            let cols = match (c0.known(), c1.known()) {
                                (Some(p), Some(q)) => AbsDim::Known(p + q),
                                _ => AbsDim::Top,
                            };
                            vec![Dims(vec![r0.prefer_known(r1), cols])]
                        }
                    }
                    _ => vec![Top],
                },

                OpKind::SliceCols { lo, hi } => match mat(&ins[0]) {
                    Mat::Bad => vec![err(
                        vec![0],
                        format!("slice_cols operand is not a matrix: {}", ins[0]),
                    )],
                    Mat::Rc(r, c) => {
                        if c.known().is_some_and(|n| *hi > n) {
                            vec![err(
                                vec![0],
                                format!("slice [{lo},{hi}) out of range for {}", ins[0]),
                            )]
                        } else {
                            vec![Dims(vec![r, AbsDim::Known(hi - lo)])]
                        }
                    }
                    Mat::Unknown => vec![Dims(vec![AbsDim::Top, AbsDim::Known(hi - lo)])],
                },

                OpKind::Transpose => match mat(&ins[0]) {
                    Mat::Bad => vec![err(
                        vec![0],
                        format!("transpose operand is not a matrix: {}", ins[0]),
                    )],
                    Mat::Rc(r, c) => vec![Dims(vec![c, r])],
                    Mat::Unknown => vec![Top],
                },

                OpKind::StackRows => {
                    let mut d: Option<usize> = None;
                    let mut bad = None;
                    for (i, s) in ins.iter().enumerate() {
                        if let Some(n) = s.numel() {
                            match d {
                                Some(prev) if prev != n => {
                                    bad = Some((i, prev, n));
                                    break;
                                }
                                _ => d = Some(n),
                            }
                        }
                    }
                    if let Some((i, prev, n)) = bad {
                        vec![err(
                            vec![i as u16],
                            format!("stack_rows parts differ in size: {prev} vs {n}"),
                        )]
                    } else {
                        let cols = d.map(AbsDim::Known).unwrap_or(AbsDim::Top);
                        vec![Dims(vec![AbsDim::Known(ins.len()), cols])]
                    }
                }

                OpKind::SumAll | OpKind::MeanAll => vec![AbsShape::scalar()],
                OpKind::SumAxis0 => match mat(&ins[0]) {
                    Mat::Bad => vec![err(
                        vec![0],
                        format!("sum_axis0 operand is not a matrix: {}", ins[0]),
                    )],
                    Mat::Rc(_, c) => vec![Dims(vec![c])],
                    Mat::Unknown => vec![Top],
                },

                OpKind::GatherRows => {
                    let d = match mat(&ins[0]) {
                        Mat::Bad => {
                            return (
                                vec![err(
                                    vec![0],
                                    format!("gather_rows table is not a matrix: {}", ins[0]),
                                )],
                                diags,
                            )
                        }
                        Mat::Rc(_, c) => c,
                        Mat::Unknown => AbsDim::Top,
                    };
                    let rows = ins[1].numel().map(AbsDim::Known).unwrap_or(AbsDim::Top);
                    vec![Dims(vec![rows, d])]
                }
                OpKind::GetRow => {
                    let d = match mat(&ins[0]) {
                        Mat::Bad => {
                            return (
                                vec![err(
                                    vec![0],
                                    format!("get_row operand is not a matrix: {}", ins[0]),
                                )],
                                diags,
                            )
                        }
                        Mat::Rc(_, c) => c,
                        Mat::Unknown => AbsDim::Top,
                    };
                    if !ins[1].could_be_scalar() {
                        vec![err(
                            vec![1],
                            format!("row index must be a scalar, got {}", ins[1]),
                        )]
                    } else {
                        vec![Dims(vec![AbsDim::Known(1), d])]
                    }
                }
                OpKind::SetRow => {
                    if !ins[1].could_be_scalar() {
                        vec![err(
                            vec![1],
                            format!("row index must be a scalar, got {}", ins[1]),
                        )]
                    } else {
                        match (mat(&ins[0]), ins[2].numel()) {
                            (Mat::Rc(_, c), Some(rn)) if c.known().is_some_and(|n| n != rn) => {
                                vec![err(
                                    vec![0, 2],
                                    format!("row of {rn} elements into {} columns", c),
                                )]
                            }
                            (Mat::Bad, _) => vec![err(
                                vec![0],
                                format!("set_row target is not a matrix: {}", ins[0]),
                            )],
                            _ => vec![ins[0].clone()],
                        }
                    }
                }
                OpKind::OneHot { classes } => {
                    let rows = ins[0].numel().map(AbsDim::Known).unwrap_or(AbsDim::Top);
                    vec![Dims(vec![rows, AbsDim::Known(*classes)])]
                }
                OpKind::ArgmaxRows => match mat(&ins[0]) {
                    Mat::Bad => vec![err(
                        vec![0],
                        format!("argmax_rows operand is not a matrix: {}", ins[0]),
                    )],
                    Mat::Rc(r, _) => vec![Dims(vec![r])],
                    Mat::Unknown => vec![Top],
                },

                OpKind::SoftmaxXent => match mat(&ins[0]) {
                    Mat::Bad => vec![err(
                        vec![0],
                        format!("softmax_xent logits are not a matrix: {}", ins[0]),
                    )],
                    Mat::Rc(r, _) => {
                        if let (Some(m), Some(ln)) = (r.known(), ins[1].numel()) {
                            if m != ln {
                                return (
                                    vec![err(
                                        vec![0, 1],
                                        format!("{ln} labels against {m} logit rows"),
                                    )],
                                    diags,
                                );
                            }
                        }
                        vec![Dims(vec![r])]
                    }
                    Mat::Unknown => vec![Top],
                },

                OpKind::IAdd
                | OpKind::ISub
                | OpKind::IMul
                | OpKind::IDiv
                | OpKind::ILt
                | OpKind::ILe
                | OpKind::IGt
                | OpKind::IGe
                | OpKind::IEq
                | OpKind::And
                | OpKind::Or
                | OpKind::Not
                | OpKind::FGtConst(_) => {
                    let mut out = AbsShape::scalar();
                    for (i, s) in ins.iter().enumerate() {
                        if !s.could_be_scalar() {
                            out = err(vec![i as u16], format!("operand must be a scalar, got {s}"));
                            break;
                        }
                    }
                    vec![out]
                }
                OpKind::GatherScalarI32 => {
                    if !ins[1].could_be_scalar() {
                        vec![err(
                            vec![1],
                            format!("index must be a scalar, got {}", ins[1]),
                        )]
                    } else {
                        vec![AbsShape::scalar()]
                    }
                }
                OpKind::Len => vec![AbsShape::scalar()],
                OpKind::ZerosDyn { cols } => {
                    if !ins[0].could_be_scalar() {
                        vec![err(
                            vec![0],
                            format!("row count must be a scalar, got {}", ins[0]),
                        )]
                    } else {
                        let sym = self.syms[&(slot, node)];
                        vec![Dims(vec![AbsDim::Sym(sym), AbsDim::Known(*cols)])]
                    }
                }

                OpKind::Invoke { sub, .. } => {
                    if propagate {
                        self.mark_reached(*sub);
                        for (i, s) in ins.iter().enumerate() {
                            self.join_sub_input(*sub, i, s);
                        }
                    }
                    self.sub_summary(*sub)
                }
                OpKind::Cond {
                    sub_then,
                    sub_else,
                    n_then_in,
                    ..
                } => {
                    let nt = *n_then_in as usize;
                    if propagate {
                        self.mark_reached(*sub_then);
                        self.mark_reached(*sub_else);
                        for (i, s) in ins[1..1 + nt].iter().enumerate() {
                            self.join_sub_input(*sub_then, i, s);
                        }
                        for (i, s) in ins[1 + nt..].iter().enumerate() {
                            self.join_sub_input(*sub_else, i, s);
                        }
                    }
                    if !ins[0].could_be_scalar() {
                        diags.push((
                            vec![0],
                            format!("cond predicate must be a scalar, got {}", ins[0]),
                        ));
                    }
                    let t = self.sub_summary(*sub_then);
                    let e = self.sub_summary(*sub_else);
                    t.iter().zip(e.iter()).map(|(a, b)| a.join(b)).collect()
                }

                OpKind::SoftmaxXentGrad => vec![ins[0].clone()],
                OpKind::MeanAllGrad | OpKind::FillLike | OpKind::BroadcastRowsLike => {
                    vec![ins[0].clone()]
                }
                OpKind::PadColsLike { .. } => vec![ins[0].clone()],
                OpKind::SliceColsLike { take_second } => {
                    let w = if *take_second { &ins[1] } else { &ins[0] };
                    let rows = match mat(&ins[2]) {
                        Mat::Rc(r, _) => r,
                        _ => AbsDim::Top,
                    };
                    let cols = match mat(w) {
                        Mat::Rc(_, c) => c,
                        _ => AbsDim::Top,
                    };
                    vec![Dims(vec![rows, cols])]
                }
                OpKind::ScatterRowsLike | OpKind::ScatterRowLike => vec![ins[0].clone()],
                OpKind::BilinearGradX => vec![ins[0].clone()],
                OpKind::BilinearGradV => vec![ins[1].clone()],
                OpKind::GradSink { .. } | OpKind::GradSinkRows { .. } => vec![AbsShape::scalar()],
            };
        debug_assert_eq!(out.len(), n_out);
        (out, diags)
    }
}

/// Elementwise binary result: exact shape match (refined elementwise) or a
/// possible scalar broadcast; errors only when definitely neither.
fn ew_binary(a: &AbsShape, b: &AbsShape) -> Result<AbsShape, String> {
    use AbsShape::{Dims, Top};
    match (a, b) {
        (Top, _) | (_, Top) | (AbsShape::Bottom, _) | (_, AbsShape::Bottom) => Ok(Top),
        (Dims(x), Dims(y)) => {
            let equal_ok = x.len() == y.len() && !x.iter().zip(y).any(|(&p, &q)| p.conflicts(q));
            if equal_ok {
                Ok(Dims(
                    x.iter().zip(y).map(|(&p, &q)| p.prefer_known(q)).collect(),
                ))
            } else if a.could_be_scalar() {
                Ok(b.clone())
            } else if b.could_be_scalar() {
                Ok(a.clone())
            } else {
                Err(format!("elementwise shapes incompatible: {a} vs {b}"))
            }
        }
    }
}

/// Matrix-product result shape for the three `MatMul` variants.
fn matmul_like(a: &AbsShape, b: &AbsShape, at: bool, bt: bool) -> Result<AbsShape, String> {
    let (ka, m) = match mat(a) {
        Mat::Bad => return Err(format!("matmul lhs is not a matrix: {a}")),
        Mat::Rc(r, c) => {
            if at {
                (r, c) // A: [k, m], used as Aᵀ
            } else {
                (c, r) // A: [m, k]
            }
        }
        Mat::Unknown => (AbsDim::Top, AbsDim::Top),
    };
    let (kb, n) = match mat(b) {
        Mat::Bad => return Err(format!("matmul rhs is not a matrix: {b}")),
        Mat::Rc(r, c) => {
            if bt {
                (c, r) // B: [n, k], used as Bᵀ
            } else {
                (r, c) // B: [k, n]
            }
        }
        Mat::Unknown => (AbsDim::Top, AbsDim::Top),
    };
    if ka.conflicts(kb) {
        return Err(format!(
            "inner dimensions differ: {a} vs {b} (k={ka} vs k={kb})"
        ));
    }
    Ok(AbsShape::Dims(vec![m, n]))
}

/// Expected input dtypes of an op, where fixed. `None` entries accept any
/// dtype. Ops with no constraints return an empty list.
fn expected_input_dtypes(op: &OpKind, arity: usize) -> Vec<Option<DType>> {
    use DType::{F32, I32};
    let all = |d: DType| vec![Some(d); arity];
    match op {
        OpKind::Add
        | OpKind::Sub
        | OpKind::Mul
        | OpKind::Div
        | OpKind::Neg
        | OpKind::Scale(_)
        | OpKind::AddConst(_)
        | OpKind::ScalarMul
        | OpKind::MatMul
        | OpKind::MatMulAT
        | OpKind::MatMulBT
        | OpKind::AddBias
        | OpKind::Bilinear
        | OpKind::Tanh
        | OpKind::Sigmoid
        | OpKind::Relu
        | OpKind::Softmax
        | OpKind::LogSoftmax
        | OpKind::ConcatCols
        | OpKind::SliceCols { .. }
        | OpKind::Transpose
        | OpKind::StackRows
        | OpKind::SumAll
        | OpKind::MeanAll
        | OpKind::SumAxis0
        | OpKind::FGtConst(_)
        | OpKind::TanhGrad
        | OpKind::SigmoidGrad
        | OpKind::ReluGrad
        | OpKind::SoftmaxGrad
        | OpKind::LogSoftmaxGrad
        | OpKind::MeanAllGrad
        | OpKind::FillLike
        | OpKind::BroadcastRowsLike
        | OpKind::PadColsLike { .. }
        | OpKind::SliceColsLike { .. }
        | OpKind::BilinearGradX
        | OpKind::BilinearGradV
        | OpKind::GradSink { .. } => all(F32),
        OpKind::ArgmaxRows => all(F32),
        OpKind::IAdd
        | OpKind::ISub
        | OpKind::IMul
        | OpKind::IDiv
        | OpKind::ILt
        | OpKind::ILe
        | OpKind::IGt
        | OpKind::IGe
        | OpKind::IEq
        | OpKind::And
        | OpKind::Or
        | OpKind::Not
        | OpKind::GatherScalarI32
        | OpKind::ZerosDyn { .. }
        | OpKind::OneHot { .. } => all(I32),
        OpKind::GatherRows | OpKind::GetRow => vec![Some(F32), Some(I32)],
        OpKind::SetRow => vec![Some(F32), Some(I32), Some(F32)],
        OpKind::SoftmaxXent => vec![Some(F32), Some(I32)],
        OpKind::SoftmaxXentGrad | OpKind::ScatterRowsLike | OpKind::ScatterRowLike => {
            vec![Some(F32), Some(I32), Some(F32)]
        }
        OpKind::GradSinkRows { .. } => vec![Some(I32), Some(F32)],
        _ => vec![None; arity],
    }
}

/// Dtype findings for one node (checked against producers' declared output
/// dtypes, so forged graphs the builder would reject are caught too).
fn dtype_diags(m: &Module, gref: GraphRef, g: &Graph, node: usize) -> Vec<(Vec<u16>, String)> {
    let n = &g.nodes[node];
    let mut out = Vec::new();
    match &n.op {
        OpKind::Invoke { sub, .. } => {
            let sg = m.subgraph(*sub);
            for (i, p) in n.inputs.iter().enumerate() {
                let got = g.port_dtype(*p);
                if let Some(&want) = sg.input_dtypes.get(i) {
                    if got != want {
                        out.push((
                            vec![i as u16],
                            format!(
                                "invoke of {}: arg {i} is {got:?}, expected {want:?}",
                                sg.name
                            ),
                        ));
                    }
                }
            }
        }
        OpKind::Cond {
            sub_then,
            sub_else,
            n_then_in,
            ..
        } => {
            let nt = *n_then_in as usize;
            if g.port_dtype(n.inputs[0]) != DType::I32 {
                out.push((vec![0], "cond predicate must be i32".to_string()));
            }
            for (i, p) in n.inputs[1..].iter().enumerate() {
                let (sg, j) = if i < nt {
                    (m.subgraph(*sub_then), i)
                } else {
                    (m.subgraph(*sub_else), i - nt)
                };
                let got = g.port_dtype(*p);
                if let Some(&want) = sg.input_dtypes.get(j) {
                    if got != want {
                        out.push((
                            vec![(i + 1) as u16],
                            format!(
                                "cond input {} routed to {}: is {got:?}, expected {want:?}",
                                i + 1,
                                sg.name
                            ),
                        ));
                    }
                }
            }
        }
        op => {
            for (i, (p, want)) in n
                .inputs
                .iter()
                .zip(expected_input_dtypes(op, n.inputs.len()))
                .enumerate()
            {
                if let Some(want) = want {
                    let got = g.port_dtype(*p);
                    if got != want {
                        out.push((
                            vec![i as u16],
                            format!("operand {i} is {got:?}, expected {want:?}"),
                        ));
                    }
                }
            }
        }
    }
    let _ = gref;
    out
}

/// Runs interprocedural shape/dtype inference over `m`, appending
/// `shape-mismatch` / `dtype-mismatch` errors to `diags`, and returns the
/// inferred [`ShapeMap`].
pub fn infer_shapes(m: &Module, diags: &mut Vec<Diagnostic>) -> ShapeMap {
    let mut inf = Infer::new(m);
    // Finite-height lattice + join-only updates ⇒ convergence; the cap is
    // a backstop that can only trigger on adversarial hand-forged graphs.
    let cap = 8 + 2 * m.total_nodes() + 4 * m.subgraphs.len();
    for _ in 0..cap {
        inf.changed = false;
        inf.sweep();
        if !inf.changed {
            break;
        }
    }

    // Reporting pass: shapes are final, so each definite mismatch is
    // reported exactly once, and never from unreached SubGraphs.
    for (slot, gref) in all_graphs(m) {
        if let GraphRef::Sub(id) = gref {
            if !inf.reached[id.0 as usize] {
                continue;
            }
        }
        let g = m.graph(gref);
        for i in 0..g.len() {
            let ins: Vec<AbsShape> = g.nodes[i]
                .inputs
                .iter()
                .map(|p| inf.shapes[slot][p.node.0 as usize][p.port as usize].clone())
                .collect();
            let (_, shape_errs) = inf.transfer(slot, gref, i, &ins, false);
            for (ports, detail) in shape_errs {
                diags.push(node_diag(
                    m,
                    gref,
                    NodeId(i as u32),
                    Severity::Error,
                    codes::SHAPE_MISMATCH,
                    ports,
                    detail,
                ));
            }
            for (ports, detail) in dtype_diags(m, gref, g, i) {
                diags.push(node_diag(
                    m,
                    gref,
                    NodeId(i as u32),
                    Severity::Error,
                    codes::DTYPE_MISMATCH,
                    ports,
                    detail,
                ));
            }
        }
    }
    ShapeMap { graphs: inf.shapes }
}
