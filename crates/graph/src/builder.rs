//! The module-construction DSL: scopes, captures, forward declarations.
//!
//! The builder mirrors the paper's client API (Figure 2):
//!
//! ```text
//! with SubGraph() as TreeLSTM:          |  let h = mb.declare_subgraph(..);
//!     idx = TreeLSTM.input(int32)       |  mb.define_subgraph(&h, |b| {
//!     ...                               |      let idx = b.input(0)?; ...
//!     left = TreeLSTM(left_idx)         |      let l = b.invoke(&h, &[li])?;
//!     TreeLSTM.output(if(..., a, b))    |      let o = b.cond(p, .., .., ..)?;
//!                                       |      Ok(vec![o[0]]) });
//! root = TreeLSTM(root_idx)             |  let r = mb.invoke(&h, &[ri])?;
//! ```
//!
//! Two paper-critical mechanisms live here:
//!
//! * **Forward declaration** (§5): [`ModuleBuilder::declare_subgraph`] mints
//!   the signature before the body exists, so the body may invoke itself
//!   (direct recursion) or a not-yet-defined sibling (mutual recursion).
//! * **Outer-reference capture** (§5): using a [`Wire`] from an enclosing
//!   scope inside a SubGraph body silently appends a capture input to the
//!   SubGraph — transitively through nested scopes — and a final fixup pass
//!   rewires every invoke site with the captured arguments (to fixpoint,
//!   because capturing can itself introduce new captures in mutual
//!   recursion).

use crate::graph::{Graph, GraphError, NodeId, PortRef};
use crate::module::{Module, ParamSpec};
use crate::op::{CallSiteId, OpKind, ParamId};
use crate::subgraph::{SubGraph, SubGraphId};
use crate::Result;
use rdg_tensor::{DType, Tensor};
use std::collections::HashMap;

/// An opaque handle to one output value during graph construction.
///
/// Wires are tagged with the graph they belong to; using a wire inside a
/// nested scope triggers automatic capture.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Wire {
    graph_uid: u32,
    node: NodeId,
    port: u16,
    dtype: DType,
}

impl Wire {
    /// Element type carried by this wire.
    pub fn dtype(&self) -> DType {
        self.dtype
    }
}

/// Handle returned by [`ModuleBuilder::declare_subgraph`].
#[derive(Clone, Debug)]
pub struct SubGraphHandle {
    slot: usize,
    in_dtypes: Vec<DType>,
    out_dtypes: Vec<DType>,
}

impl SubGraphHandle {
    /// The id the defined SubGraph will have in the finished module.
    pub fn id(&self) -> SubGraphId {
        SubGraphId(self.slot as u32)
    }
}

/// One graph under (or after) construction.
struct GraphCtx {
    #[allow(dead_code)] // Diagnostic identity; parent_uid drives resolution.
    uid: u32,
    parent_uid: Option<u32>,
    graph: Graph,
    /// Capture sources, in capture-input order; each wire lives in an
    /// ancestor scope (usually the immediate lexical parent).
    captures: Vec<Wire>,
    capture_map: HashMap<Wire, NodeId>,
    /// `None` for the main graph, `Some(slot)` for a SubGraph body.
    sg_slot: Option<usize>,
}

/// Declaration/definition state of one SubGraph slot.
struct SgSlot {
    name: String,
    in_dtypes: Vec<DType>,
    out_dtypes: Vec<DType>,
    /// Uid of the GraphCtx holding the body, once defined.
    body_uid: Option<u32>,
}

/// Record of an `Invoke` node, kept for the capture-fixup pass.
struct InvokeRecord {
    graph_uid: u32,
    node: NodeId,
    target_slot: usize,
    explicit_ports: Vec<PortRef>,
}

/// Record of a `Cond` node, kept for the capture-fixup pass.
struct CondRecord {
    graph_uid: u32,
    node: NodeId,
    pred_port: PortRef,
    then_slot: usize,
    else_slot: usize,
}

/// Builds a [`Module`]: main graph, SubGraph library, parameters.
pub struct ModuleBuilder {
    ctxs: HashMap<u32, GraphCtx>,
    stack: Vec<u32>,
    next_uid: u32,
    slots: Vec<SgSlot>,
    params: Vec<ParamSpec>,
    next_site: u32,
    invokes: Vec<InvokeRecord>,
    conds: Vec<CondRecord>,
    analysis: crate::analyze::AnalysisConfig,
}

impl Default for ModuleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuleBuilder {
    /// Creates a builder with an empty main graph.
    pub fn new() -> Self {
        let main = GraphCtx {
            uid: 0,
            parent_uid: None,
            graph: Graph::new(),
            captures: Vec::new(),
            capture_map: HashMap::new(),
            sg_slot: None,
        };
        let mut ctxs = HashMap::new();
        ctxs.insert(0, main);
        ModuleBuilder {
            ctxs,
            stack: vec![0],
            next_uid: 1,
            slots: Vec::new(),
            params: Vec::new(),
            next_site: 0,
            invokes: Vec::new(),
            conds: Vec::new(),
            analysis: crate::analyze::AnalysisConfig::default(),
        }
    }

    /// Overrides the static-analysis policy applied by
    /// [`ModuleBuilder::finish`]. The default denies errors (definite
    /// shape/dtype mismatches, ill-founded recursion, double publishes)
    /// and allows warnings; pass
    /// [`AnalysisConfig::allow_all`](crate::analyze::AnalysisConfig::allow_all)
    /// to build intentionally defective modules (fuzzers, negative tests).
    pub fn set_analysis(&mut self, cfg: crate::analyze::AnalysisConfig) {
        self.analysis = cfg;
    }

    fn top_uid(&self) -> u32 {
        *self.stack.last().expect("builder stack never empty")
    }

    fn fresh_site(&mut self) -> CallSiteId {
        let s = CallSiteId(self.next_site);
        self.next_site += 1;
        s
    }

    /// Resolves `w` to a port in graph `uid`, creating capture inputs along
    /// the lexical parent chain as needed.
    fn resolve_in(&mut self, uid: u32, w: Wire) -> Result<PortRef> {
        if w.graph_uid == uid {
            return Ok(PortRef {
                node: w.node,
                port: w.port,
            });
        }
        // Find the chain from `uid` up to the wire's graph.
        let mut chain = Vec::new();
        let mut cur = uid;
        loop {
            chain.push(cur);
            let ctx = self.ctxs.get(&cur).ok_or_else(|| GraphError::OutOfScope {
                wire: format!("{w:?}"),
            })?;
            match ctx.parent_uid {
                Some(p) if p == w.graph_uid => break,
                Some(p) => cur = p,
                None => {
                    return Err(GraphError::OutOfScope {
                        wire: format!("{w:?} (graph {uid})"),
                    })
                }
            }
        }
        // Capture from outermost to innermost: chain is [uid, ..., child-of-w].
        let mut src = w;
        for &level in chain.iter().rev() {
            src = self.capture_into(level, src);
        }
        Ok(PortRef {
            node: src.node,
            port: src.port,
        })
    }

    /// Ensures `src` (a wire in `level`'s lexical parent) is available inside
    /// graph `level` as a capture input; returns the wire of that input.
    fn capture_into(&mut self, level: u32, src: Wire) -> Wire {
        let ctx = self.ctxs.get_mut(&level).expect("level exists");
        if let Some(&nid) = ctx.capture_map.get(&src) {
            return Wire {
                graph_uid: level,
                node: nid,
                port: 0,
                dtype: src.dtype,
            };
        }
        let index = ctx.graph.input_nodes.len();
        let nid = ctx.graph.push_node(
            OpKind::Input {
                index,
                dtype: src.dtype,
            },
            vec![],
            vec![src.dtype],
        );
        ctx.captures.push(src);
        ctx.capture_map.insert(src, nid);
        Wire {
            graph_uid: level,
            node: nid,
            port: 0,
            dtype: src.dtype,
        }
    }

    /// Adds a node to the current graph, resolving wires (captures included).
    fn push(&mut self, op: OpKind, inputs: &[Wire], dtypes: Vec<DType>) -> Result<Vec<Wire>> {
        let uid = self.top_uid();
        let mut ports = Vec::with_capacity(inputs.len());
        for &w in inputs {
            ports.push(self.resolve_in(uid, w)?);
        }
        let ctx = self.ctxs.get_mut(&uid).expect("top ctx exists");
        let nid = ctx.graph.push_node(op, ports, dtypes.clone());
        Ok(dtypes
            .into_iter()
            .enumerate()
            .map(|(i, dt)| Wire {
                graph_uid: uid,
                node: nid,
                port: i as u16,
                dtype: dt,
            })
            .collect())
    }

    fn push1(&mut self, op: OpKind, inputs: &[Wire], dt: DType) -> Result<Wire> {
        Ok(self.push(op, inputs, vec![dt])?[0])
    }

    fn want(&self, w: Wire, dt: DType, ctx: &'static str) -> Result<()> {
        if w.dtype != dt {
            return Err(GraphError::invalid(format!(
                "{ctx}: expected {dt} wire, got {}",
                w.dtype
            )));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    /// Registers a trainable parameter and returns its id.
    pub fn param(&mut self, name: impl Into<String>, init: Tensor) -> ParamId {
        let id = ParamId(self.params.len() as u32);
        self.params.push(ParamSpec {
            name: name.into(),
            init,
        });
        id
    }

    /// Reads a parameter in the *current* scope.
    pub fn param_read(&mut self, p: ParamId) -> Result<Wire> {
        if p.0 as usize >= self.params.len() {
            return Err(GraphError::invalid(format!("unknown parameter id {}", p.0)));
        }
        self.push1(OpKind::Param(p), &[], DType::F32)
    }

    /// Registers a parameter and immediately reads it in the current scope.
    pub fn param_wire(&mut self, name: impl Into<String>, init: Tensor) -> Result<Wire> {
        let p = self.param(name, init);
        self.param_read(p)
    }

    /// Forward-declares a SubGraph: fixes its explicit signature so bodies
    /// (including its own) can invoke it before it is defined.
    pub fn declare_subgraph(
        &mut self,
        name: impl Into<String>,
        in_dtypes: &[DType],
        out_dtypes: &[DType],
    ) -> SubGraphHandle {
        let slot = self.slots.len();
        self.slots.push(SgSlot {
            name: name.into(),
            in_dtypes: in_dtypes.to_vec(),
            out_dtypes: out_dtypes.to_vec(),
            body_uid: None,
        });
        SubGraphHandle {
            slot,
            in_dtypes: in_dtypes.to_vec(),
            out_dtypes: out_dtypes.to_vec(),
        }
    }

    /// Defines the body of a declared SubGraph.
    ///
    /// The closure builds nodes in a fresh scope; wires from enclosing
    /// scopes are captured automatically. It returns the output wires, which
    /// must match the declared output dtypes.
    pub fn define_subgraph(
        &mut self,
        h: &SubGraphHandle,
        f: impl FnOnce(&mut ModuleBuilder) -> Result<Vec<Wire>>,
    ) -> Result<()> {
        if self.slots[h.slot].body_uid.is_some() {
            return Err(GraphError::invalid(format!(
                "SubGraph '{}' defined twice",
                self.slots[h.slot].name
            )));
        }
        let uid = self.next_uid;
        self.next_uid += 1;
        let parent = self.top_uid();
        let mut graph = Graph::new();
        for (i, &dt) in h.in_dtypes.iter().enumerate() {
            graph.push_node(
                OpKind::Input {
                    index: i,
                    dtype: dt,
                },
                vec![],
                vec![dt],
            );
        }
        self.ctxs.insert(
            uid,
            GraphCtx {
                uid,
                parent_uid: Some(parent),
                graph,
                captures: Vec::new(),
                capture_map: HashMap::new(),
                sg_slot: Some(h.slot),
            },
        );
        self.stack.push(uid);
        let result = f(self);
        // Always pop, even on error, to keep the builder usable.
        let outs = match result {
            Ok(outs) => outs,
            Err(e) => {
                self.stack.pop();
                return Err(e);
            }
        };
        if outs.len() != h.out_dtypes.len() {
            self.stack.pop();
            return Err(GraphError::SignatureMismatch {
                msg: format!(
                    "SubGraph '{}' declared {} outputs, body returned {}",
                    self.slots[h.slot].name,
                    h.out_dtypes.len(),
                    outs.len()
                ),
            });
        }
        for (i, (&w, &dt)) in outs.iter().zip(h.out_dtypes.iter()).enumerate() {
            if w.dtype != dt {
                self.stack.pop();
                return Err(GraphError::SignatureMismatch {
                    msg: format!(
                        "SubGraph '{}' output {i} declared {dt}, body produced {}",
                        self.slots[h.slot].name, w.dtype
                    ),
                });
            }
        }
        let mut out_ports = Vec::with_capacity(outs.len());
        for &w in &outs {
            out_ports.push(self.resolve_in(uid, w)?);
        }
        self.stack.pop();
        let ctx = self.ctxs.get_mut(&uid).expect("ctx exists");
        ctx.graph.outputs = out_ports;
        self.slots[h.slot].body_uid = Some(uid);
        Ok(())
    }

    /// Declares and defines a non-recursive SubGraph in one step.
    pub fn subgraph(
        &mut self,
        name: impl Into<String>,
        in_dtypes: &[DType],
        out_dtypes: &[DType],
        f: impl FnOnce(&mut ModuleBuilder) -> Result<Vec<Wire>>,
    ) -> Result<SubGraphHandle> {
        let h = self.declare_subgraph(name, in_dtypes, out_dtypes);
        self.define_subgraph(&h, f)?;
        Ok(h)
    }

    // ------------------------------------------------------------------
    // Structural ops
    // ------------------------------------------------------------------

    /// The `index`-th declared input of the SubGraph being defined.
    pub fn input(&mut self, index: usize) -> Result<Wire> {
        let uid = self.top_uid();
        let ctx = &self.ctxs[&uid];
        let slot = ctx
            .sg_slot
            .ok_or_else(|| GraphError::invalid("input() is only valid inside define_subgraph"))?;
        let n = self.slots[slot].in_dtypes.len();
        if index >= n {
            return Err(GraphError::invalid(format!(
                "input index {index} out of range ({n} declared)"
            )));
        }
        let nid = ctx.graph.input_nodes[index];
        let dt = ctx.graph.out_dtypes[nid.0 as usize][0];
        Ok(Wire {
            graph_uid: uid,
            node: nid,
            port: 0,
            dtype: dt,
        })
    }

    /// Declares a main-graph input (placeholder) fed positionally at run
    /// time. Returns a main-scope wire; using it inside a SubGraph body
    /// captures it like any other outer reference.
    pub fn main_input(&mut self, dtype: DType) -> Wire {
        let ctx = self.ctxs.get_mut(&0).expect("main ctx exists");
        let index = ctx.graph.input_nodes.len();
        let nid = ctx
            .graph
            .push_node(OpKind::Input { index, dtype }, vec![], vec![dtype]);
        Wire {
            graph_uid: 0,
            node: nid,
            port: 0,
            dtype,
        }
    }

    /// Embeds a constant tensor in the current scope.
    pub fn constant(&mut self, t: Tensor) -> Wire {
        let dt = t.dtype();
        self.push1(OpKind::Const(t), &[], dt)
            .expect("const push cannot fail")
    }

    /// Scalar `i32` constant convenience.
    pub fn const_i32(&mut self, v: i32) -> Wire {
        self.constant(Tensor::scalar_i32(v))
    }

    /// Scalar `f32` constant convenience.
    pub fn const_f32(&mut self, v: f32) -> Wire {
        self.constant(Tensor::scalar_f32(v))
    }

    /// Invokes a SubGraph — the paper's `InvokeOp`.
    ///
    /// `args` are the explicit arguments; capture arguments are wired
    /// automatically by the fixup pass in [`ModuleBuilder::finish`].
    pub fn invoke(&mut self, h: &SubGraphHandle, args: &[Wire]) -> Result<Vec<Wire>> {
        if args.len() != h.in_dtypes.len() {
            return Err(GraphError::SignatureMismatch {
                msg: format!(
                    "invoke of '{}': {} args passed, {} declared",
                    self.slots[h.slot].name,
                    args.len(),
                    h.in_dtypes.len()
                ),
            });
        }
        for (i, (&w, &dt)) in args.iter().zip(h.in_dtypes.iter()).enumerate() {
            if w.dtype != dt {
                return Err(GraphError::SignatureMismatch {
                    msg: format!(
                        "invoke of '{}': arg {i} is {}, declared {dt}",
                        self.slots[h.slot].name, w.dtype
                    ),
                });
            }
        }
        let uid = self.top_uid();
        let mut ports = Vec::with_capacity(args.len());
        for &w in args {
            ports.push(self.resolve_in(uid, w)?);
        }
        let site = self.fresh_site();
        let op = OpKind::Invoke {
            sub: SubGraphId(h.slot as u32),
            site,
            n_out: h.out_dtypes.len() as u16,
            mirror: false,
        };
        let ctx = self.ctxs.get_mut(&uid).expect("top ctx");
        let nid = ctx.graph.push_node(op, ports.clone(), h.out_dtypes.clone());
        self.invokes.push(InvokeRecord {
            graph_uid: uid,
            node: nid,
            target_slot: h.slot,
            explicit_ports: ports,
        });
        Ok(h.out_dtypes
            .iter()
            .enumerate()
            .map(|(i, &dt)| Wire {
                graph_uid: uid,
                node: nid,
                port: i as u16,
                dtype: dt,
            })
            .collect())
    }

    /// Functional conditional: executes exactly one branch SubGraph.
    ///
    /// `pred` is an `i32` scalar (non-zero ⇒ then-branch). Both closures
    /// build anonymous branch SubGraphs whose inputs are entirely captures;
    /// they must produce `out_dtypes`.
    pub fn cond(
        &mut self,
        pred: Wire,
        out_dtypes: &[DType],
        then_f: impl FnOnce(&mut ModuleBuilder) -> Result<Vec<Wire>>,
        else_f: impl FnOnce(&mut ModuleBuilder) -> Result<Vec<Wire>>,
    ) -> Result<Vec<Wire>> {
        self.want(pred, DType::I32, "cond predicate")?;
        let then_h = self.declare_subgraph("cond_then", &[], out_dtypes);
        self.define_subgraph(&then_h, then_f)?;
        let else_h = self.declare_subgraph("cond_else", &[], out_dtypes);
        self.define_subgraph(&else_h, else_f)?;

        let uid = self.top_uid();
        let pred_port = self.resolve_in(uid, pred)?;
        let site_then = self.fresh_site();
        let site_else = self.fresh_site();
        let op = OpKind::Cond {
            sub_then: SubGraphId(then_h.slot as u32),
            sub_else: SubGraphId(else_h.slot as u32),
            site_then,
            site_else,
            n_then_in: 0, // finalized by fixup
            n_out: out_dtypes.len() as u16,
            mirror: false,
        };
        let ctx = self.ctxs.get_mut(&uid).expect("top ctx");
        let nid = ctx
            .graph
            .push_node(op, vec![pred_port], out_dtypes.to_vec());
        self.conds.push(CondRecord {
            graph_uid: uid,
            node: nid,
            pred_port,
            then_slot: then_h.slot,
            else_slot: else_h.slot,
        });
        Ok(out_dtypes
            .iter()
            .enumerate()
            .map(|(i, &dt)| Wire {
                graph_uid: uid,
                node: nid,
                port: i as u16,
                dtype: dt,
            })
            .collect())
    }

    /// Single-output convenience wrapper over [`ModuleBuilder::cond`].
    pub fn cond1(
        &mut self,
        pred: Wire,
        out_dtype: DType,
        then_f: impl FnOnce(&mut ModuleBuilder) -> Result<Wire>,
        else_f: impl FnOnce(&mut ModuleBuilder) -> Result<Wire>,
    ) -> Result<Wire> {
        Ok(self.cond(
            pred,
            &[out_dtype],
            |b| Ok(vec![then_f(b)?]),
            |b| Ok(vec![else_f(b)?]),
        )?[0])
    }

    /// Iterative loop construct, expressed as tail recursion.
    ///
    /// `while_loop(init, cond, body)` builds a SubGraph
    /// `W(s) = if cond(s) { W(body(s)) } else { s }` and invokes it with
    /// `init` — taking the paper's observation literally: iteration is the
    /// special case, recursion the general mechanism. The loop-carried state
    /// is a tuple of tensors whose dtypes are fixed by `init`.
    pub fn while_loop(
        &mut self,
        name: &str,
        init: &[Wire],
        cond_f: impl FnOnce(&mut ModuleBuilder, &[Wire]) -> Result<Wire>,
        body_f: impl FnOnce(&mut ModuleBuilder, &[Wire]) -> Result<Vec<Wire>>,
    ) -> Result<Vec<Wire>> {
        let dtypes: Vec<DType> = init.iter().map(|w| w.dtype).collect();
        let w_h = self.declare_subgraph(name, &dtypes, &dtypes);
        let w_h2 = w_h.clone();
        let dt2 = dtypes.clone();
        self.define_subgraph(&w_h, move |b| {
            let state: Vec<Wire> = (0..dt2.len()).map(|i| b.input(i)).collect::<Result<_>>()?;
            let p = cond_f(b, &state)?;
            b.want(p, DType::I32, "while_loop condition")?;
            let state_then = state.clone();
            let state_else = state.clone();
            b.cond(
                p,
                &dt2,
                move |b| {
                    let next = body_f(b, &state_then)?;
                    if next.len() != state_then.len() {
                        return Err(GraphError::SignatureMismatch {
                            msg: format!(
                                "while_loop body returned {} states, expected {}",
                                next.len(),
                                state_then.len()
                            ),
                        });
                    }
                    b.invoke(&w_h2, &next)
                },
                move |b| {
                    // Terminal case: pass the state through unchanged. The
                    // identity nodes give the branch its own output ports.
                    state_else
                        .iter()
                        .map(|&s| b.push1(OpKind::Identity, &[s], s.dtype()))
                        .collect()
                },
            )
        })?;
        self.invoke(&w_h, init)
    }

    /// Sets the outputs of the main graph.
    pub fn set_outputs(&mut self, outs: &[Wire]) -> Result<()> {
        let mut ports = Vec::with_capacity(outs.len());
        for &w in outs {
            ports.push(self.resolve_in(0, w)?);
        }
        self.ctxs.get_mut(&0).expect("main ctx").graph.outputs = ports;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Math / tensor ops (dtype-checked conveniences)
    // ------------------------------------------------------------------

    fn bin_f32(&mut self, op: OpKind, a: Wire, b: Wire) -> Result<Wire> {
        self.want(a, DType::F32, "f32 binary op lhs")?;
        self.want(b, DType::F32, "f32 binary op rhs")?;
        self.push1(op, &[a, b], DType::F32)
    }

    fn un_f32(&mut self, op: OpKind, a: Wire) -> Result<Wire> {
        self.want(a, DType::F32, "f32 unary op")?;
        self.push1(op, &[a], DType::F32)
    }

    fn bin_i32(&mut self, op: OpKind, a: Wire, b: Wire) -> Result<Wire> {
        self.want(a, DType::I32, "i32 binary op lhs")?;
        self.want(b, DType::I32, "i32 binary op rhs")?;
        self.push1(op, &[a, b], DType::I32)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::Add, a, b)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::Sub, a, b)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::Mul, a, b)
    }

    /// Elementwise quotient.
    pub fn div(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::Div, a, b)
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::Neg, a)
    }

    /// Multiplication by a static constant.
    pub fn scale(&mut self, a: Wire, s: f32) -> Result<Wire> {
        self.un_f32(OpKind::Scale(s), a)
    }

    /// Addition of a static constant.
    pub fn add_const(&mut self, a: Wire, c: f32) -> Result<Wire> {
        self.un_f32(OpKind::AddConst(c), a)
    }

    /// Multiplication by a runtime scalar.
    pub fn scalar_mul(&mut self, a: Wire, s: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::ScalarMul, a, s)
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::MatMul, a, b)
    }

    /// Row-broadcast bias addition.
    pub fn add_bias(&mut self, a: Wire, bias: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::AddBias, a, bias)
    }

    /// Bilinear tensor product (RNTN).
    pub fn bilinear(&mut self, x: Wire, v: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::Bilinear, x, v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::Tanh, a)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::Sigmoid, a)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::Relu, a)
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::Softmax, a)
    }

    /// Row-wise log-softmax.
    pub fn log_softmax(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::LogSoftmax, a)
    }

    /// Column concatenation.
    pub fn concat_cols(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_f32(OpKind::ConcatCols, a, b)
    }

    /// Column slice `[lo, hi)`.
    pub fn slice_cols(&mut self, a: Wire, lo: usize, hi: usize) -> Result<Wire> {
        self.un_f32(OpKind::SliceCols { lo, hi }, a)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::Transpose, a)
    }

    /// Stacks row vectors into a matrix.
    pub fn stack_rows(&mut self, rows: &[Wire]) -> Result<Wire> {
        for &r in rows {
            self.want(r, DType::F32, "stack_rows")?;
        }
        self.push1(OpKind::StackRows, rows, DType::F32)
    }

    /// Sum of all elements.
    pub fn sum_all(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::SumAll, a)
    }

    /// Mean of all elements.
    pub fn mean_all(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::MeanAll, a)
    }

    /// Column sums.
    pub fn sum_axis0(&mut self, a: Wire) -> Result<Wire> {
        self.un_f32(OpKind::SumAxis0, a)
    }

    /// Row gather from a table by `i32` ids.
    pub fn gather_rows(&mut self, table: Wire, ids: Wire) -> Result<Wire> {
        self.want(table, DType::F32, "gather_rows table")?;
        self.want(ids, DType::I32, "gather_rows ids")?;
        self.push1(OpKind::GatherRows, &[table, ids], DType::F32)
    }

    /// Single-row extraction by scalar index.
    pub fn get_row(&mut self, mat: Wire, i: Wire) -> Result<Wire> {
        self.want(mat, DType::F32, "get_row matrix")?;
        self.want(i, DType::I32, "get_row index")?;
        self.push1(OpKind::GetRow, &[mat, i], DType::F32)
    }

    /// Functional row replacement.
    pub fn set_row(&mut self, mat: Wire, i: Wire, row: Wire) -> Result<Wire> {
        self.want(mat, DType::F32, "set_row matrix")?;
        self.want(i, DType::I32, "set_row index")?;
        self.want(row, DType::F32, "set_row row")?;
        self.push1(OpKind::SetRow, &[mat, i, row], DType::F32)
    }

    /// One-hot encoding.
    pub fn onehot(&mut self, ids: Wire, classes: usize) -> Result<Wire> {
        self.want(ids, DType::I32, "onehot ids")?;
        self.push1(OpKind::OneHot { classes }, &[ids], DType::F32)
    }

    /// Row-wise argmax.
    pub fn argmax_rows(&mut self, a: Wire) -> Result<Wire> {
        self.want(a, DType::F32, "argmax_rows")?;
        self.push1(OpKind::ArgmaxRows, &[a], DType::I32)
    }

    /// Fused softmax cross-entropy.
    pub fn softmax_xent(&mut self, logits: Wire, labels: Wire) -> Result<Wire> {
        self.want(logits, DType::F32, "softmax_xent logits")?;
        self.want(labels, DType::I32, "softmax_xent labels")?;
        self.push1(OpKind::SoftmaxXent, &[logits, labels], DType::F32)
    }

    /// Scalar integer addition.
    pub fn iadd(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::IAdd, a, b)
    }

    /// Scalar integer subtraction.
    pub fn isub(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::ISub, a, b)
    }

    /// Scalar integer multiplication.
    pub fn imul(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::IMul, a, b)
    }

    /// Scalar integer division.
    pub fn idiv(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::IDiv, a, b)
    }

    /// Scalar `<`.
    pub fn ilt(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::ILt, a, b)
    }

    /// Scalar `<=`.
    pub fn ile(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::ILe, a, b)
    }

    /// Scalar `>`.
    pub fn igt(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::IGt, a, b)
    }

    /// Scalar `>=`.
    pub fn ige(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::IGe, a, b)
    }

    /// Scalar `==`.
    pub fn ieq(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::IEq, a, b)
    }

    /// Logical AND.
    pub fn and(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::And, a, b)
    }

    /// Logical OR.
    pub fn or(&mut self, a: Wire, b: Wire) -> Result<Wire> {
        self.bin_i32(OpKind::Or, a, b)
    }

    /// Logical NOT.
    pub fn not(&mut self, a: Wire) -> Result<Wire> {
        self.want(a, DType::I32, "not")?;
        self.push1(OpKind::Not, &[a], DType::I32)
    }

    /// Element gather from a rank-1 `i32` tensor.
    pub fn gather_scalar_i32(&mut self, vec: Wire, i: Wire) -> Result<Wire> {
        self.want(vec, DType::I32, "gather_scalar_i32 vec")?;
        self.want(i, DType::I32, "gather_scalar_i32 index")?;
        self.push1(OpKind::GatherScalarI32, &[vec, i], DType::I32)
    }

    /// Element count of any tensor as an `i32` scalar.
    pub fn len_of(&mut self, t: Wire) -> Result<Wire> {
        self.push1(OpKind::Len, &[t], DType::I32)
    }

    /// `f32` scalar threshold predicate `x > c` (runtime-value control flow).
    pub fn fgt_const(&mut self, x: Wire, c: f32) -> Result<Wire> {
        self.want(x, DType::F32, "fgt_const")?;
        self.push1(OpKind::FGtConst(c), &[x], DType::I32)
    }

    /// Zeros of runtime row count: `[n, cols]`.
    pub fn zeros_dyn(&mut self, n: Wire, cols: usize) -> Result<Wire> {
        self.want(n, DType::I32, "zeros_dyn")?;
        self.push1(OpKind::ZerosDyn { cols }, &[n], DType::F32)
    }

    /// Identity pass-through.
    pub fn identity(&mut self, a: Wire) -> Result<Wire> {
        self.push1(OpKind::Identity, &[a], a.dtype)
    }

    /// Zeros with the shape of `a`.
    pub fn zeros_like(&mut self, a: Wire) -> Result<Wire> {
        self.want(a, DType::F32, "zeros_like")?;
        self.push1(OpKind::ZerosLike, &[a], DType::F32)
    }

    /// Ones with the shape of `a`.
    pub fn ones_like(&mut self, a: Wire) -> Result<Wire> {
        self.want(a, DType::F32, "ones_like")?;
        self.push1(OpKind::OnesLike, &[a], DType::F32)
    }

    // ------------------------------------------------------------------
    // Finish: capture fixup + assembly
    // ------------------------------------------------------------------

    /// Finalizes the module: checks that every declared SubGraph was
    /// defined, runs the capture-fixup fixpoint (wiring capture arguments at
    /// every invoke and cond site), assembles, and validates.
    pub fn finish(mut self) -> Result<Module> {
        if self.stack.len() != 1 {
            return Err(GraphError::invalid(
                "finish() called inside define_subgraph",
            ));
        }
        for slot in &self.slots {
            if slot.body_uid.is_none() {
                return Err(GraphError::Undefined {
                    name: slot.name.clone(),
                });
            }
        }

        // --- capture fixpoint -------------------------------------------------
        // Wiring a SubGraph's captures at an invoke site inside another
        // SubGraph can force *that* SubGraph to capture more — iterate until
        // no graph changes. Each pass rebuilds invoke/cond input lists from
        // the target's current capture list.
        let slot_uid: Vec<u32> = self
            .slots
            .iter()
            .map(|s| s.body_uid.expect("checked defined"))
            .collect();
        loop {
            let mut changed = false;
            for rec_i in 0..self.invokes.len() {
                let (graph_uid, node, target_slot, explicit) = {
                    let r = &self.invokes[rec_i];
                    (r.graph_uid, r.node, r.target_slot, r.explicit_ports.clone())
                };
                let caps: Vec<Wire> = self.ctxs[&slot_uid[target_slot]].captures.clone();
                let mut inputs = explicit;
                for cap in caps {
                    inputs.push(self.resolve_in(graph_uid, cap)?);
                }
                let g = &mut self.ctxs.get_mut(&graph_uid).expect("ctx").graph;
                let n = &mut g.nodes[node.0 as usize];
                if n.inputs != inputs {
                    n.inputs = inputs;
                    changed = true;
                }
            }
            for rec_i in 0..self.conds.len() {
                let (graph_uid, node, pred, then_slot, else_slot) = {
                    let r = &self.conds[rec_i];
                    (r.graph_uid, r.node, r.pred_port, r.then_slot, r.else_slot)
                };
                let then_caps: Vec<Wire> = self.ctxs[&slot_uid[then_slot]].captures.clone();
                let else_caps: Vec<Wire> = self.ctxs[&slot_uid[else_slot]].captures.clone();
                let n_then = then_caps.len() as u16;
                let mut inputs = vec![pred];
                for cap in then_caps.into_iter().chain(else_caps) {
                    inputs.push(self.resolve_in(graph_uid, cap)?);
                }
                let g = &mut self.ctxs.get_mut(&graph_uid).expect("ctx").graph;
                let n = &mut g.nodes[node.0 as usize];
                let need_update = n.inputs != inputs
                    || !matches!(n.op, OpKind::Cond { n_then_in, .. } if n_then_in == n_then);
                if need_update {
                    n.inputs = inputs;
                    if let OpKind::Cond { n_then_in, .. } = &mut n.op {
                        *n_then_in = n_then;
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // --- assembly ----------------------------------------------------------
        let mut module = Module {
            subgraphs: Vec::with_capacity(self.slots.len()),
            main: Graph::new(),
            params: std::mem::take(&mut self.params),
            n_sites: self.next_site,
            keep_sets: HashMap::new(),
            shape_keep_sets: HashMap::new(),
        };
        for (i, slot) in self.slots.iter().enumerate() {
            let uid = slot_uid[i];
            let ctx = self.ctxs.remove(&uid).expect("slot ctx");
            let mut input_dtypes = slot.in_dtypes.clone();
            input_dtypes.extend(ctx.captures.iter().map(|w| w.dtype));
            module.subgraphs.push(SubGraph {
                id: SubGraphId(i as u32),
                name: slot.name.clone(),
                graph: ctx.graph,
                input_dtypes,
                explicit_inputs: slot.in_dtypes.len(),
                output_dtypes: slot.out_dtypes.clone(),
                grad_of: None,
                grad_input_map: Vec::new(),
            });
        }
        module.main = self.ctxs.remove(&0).expect("main ctx").graph;
        module.validate()?;
        // Static analysis closes the builder's historical loophole: invoke
        // sites only ever checked arity and dtypes, so shape-incompatible
        // arguments sailed through to a runtime kernel error. The
        // interprocedural shape pass rejects them here instead.
        crate::analyze::check_module(&module, &self.analysis)?;
        Ok(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::GraphRef;

    #[test]
    fn straight_line_main_graph() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(2.0);
        let b = mb.const_f32(3.0);
        let c = mb.add(a, b).unwrap();
        mb.set_outputs(&[c]).unwrap();
        let m = mb.finish().unwrap();
        assert_eq!(m.main.len(), 3);
        assert_eq!(m.main.outputs.len(), 1);
    }

    #[test]
    fn dtype_mismatch_is_rejected_at_build_time() {
        let mut mb = ModuleBuilder::new();
        let a = mb.const_f32(2.0);
        let i = mb.const_i32(1);
        assert!(mb.add(a, i).is_err());
        assert!(mb.iadd(a, i).is_err());
        assert!(mb
            .cond1(
                a,
                DType::F32,
                |b| Ok(b.const_f32(0.0)),
                |b| Ok(b.const_f32(1.0))
            )
            .is_err());
    }

    #[test]
    fn simple_subgraph_and_invoke() {
        let mut mb = ModuleBuilder::new();
        let sq = mb
            .subgraph("square", &[DType::F32], &[DType::F32], |b| {
                let x = b.input(0)?;
                Ok(vec![b.mul(x, x)?])
            })
            .unwrap();
        let c = mb.const_f32(4.0);
        let out = mb.invoke(&sq, &[c]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        assert_eq!(m.subgraphs.len(), 1);
        assert_eq!(m.subgraphs[0].n_captures(), 0);
    }

    #[test]
    fn capture_from_main_into_subgraph() {
        let mut mb = ModuleBuilder::new();
        let outer = mb.const_f32(10.0);
        let sg = mb
            .subgraph("addouter", &[DType::F32], &[DType::F32], |b| {
                let x = b.input(0)?;
                // `outer` is a main-graph wire: must become a capture.
                Ok(vec![b.add(x, outer)?])
            })
            .unwrap();
        let c = mb.const_f32(1.0);
        let out = mb.invoke(&sg, &[c]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        let s = &m.subgraphs[0];
        assert_eq!(s.explicit_inputs, 1);
        assert_eq!(s.n_captures(), 1);
        assert_eq!(s.n_inputs(), 2);
        // The invoke node must have been rewired with the capture argument.
        let inv = m
            .main
            .nodes
            .iter()
            .find(|n| matches!(n.op, OpKind::Invoke { .. }))
            .expect("invoke exists");
        assert_eq!(inv.inputs.len(), 2);
    }

    #[test]
    fn capture_is_deduplicated() {
        let mut mb = ModuleBuilder::new();
        let outer = mb.const_f32(10.0);
        let sg = mb
            .subgraph("twice", &[], &[DType::F32], |b| {
                let s = b.add(outer, outer)?;
                Ok(vec![s])
            })
            .unwrap();
        let out = mb.invoke(&sg, &[]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        assert_eq!(m.subgraphs[0].n_captures(), 1, "same wire captured once");
    }

    #[test]
    fn self_recursion_with_captures() {
        // countdown(n) = if n > 0 { countdown(n - step) } else { n }
        // where `step` is captured from main.
        let mut mb = ModuleBuilder::new();
        let step = mb.const_i32(1);
        let h = mb.declare_subgraph("countdown", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.igt(n, zero)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| {
                    let next = b.isub(n, step)?; // captures `step` transitively
                    Ok(b.invoke(&h, &[next])?[0])
                },
                |b| b.identity(n),
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let start = mb.const_i32(5);
        let out = mb.invoke(&h, &[start]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        // countdown captured `step` (via the then-branch chain).
        let cd = &m.subgraphs[0];
        assert_eq!(cd.name, "countdown");
        assert_eq!(cd.explicit_inputs, 1);
        assert!(cd.n_captures() >= 1, "step must be captured");
        // The self-invoke inside the then-branch must pass all inputs.
        m.validate().unwrap();
    }

    #[test]
    fn mutual_recursion_fixup_converges() {
        // even(n) = n == 0 ? 1 : odd(n - 1)
        // odd(n)  = n == 0 ? 0 : even(n - 1)
        let mut mb = ModuleBuilder::new();
        let even = mb.declare_subgraph("even", &[DType::I32], &[DType::I32]);
        let odd = mb.declare_subgraph("odd", &[DType::I32], &[DType::I32]);
        let one = mb.const_i32(1); // captured from main by both bodies
        mb.define_subgraph(&even, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.ieq(n, zero)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| b.identity(one),
                |b| {
                    let m = b.isub(n, one)?;
                    Ok(b.invoke(&odd, &[m])?[0])
                },
            )?;
            Ok(vec![out])
        })
        .unwrap();
        mb.define_subgraph(&odd, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.ieq(n, zero)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| b.identity(zero),
                |b| {
                    let m = b.isub(n, one)?;
                    Ok(b.invoke(&even, &[m])?[0])
                },
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let start = mb.const_i32(4);
        let out = mb.invoke(&even, &[start]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        m.validate().unwrap();
        assert!(m.subgraphs.len() >= 2);
    }

    #[test]
    fn while_loop_builds_and_validates() {
        let mut mb = ModuleBuilder::new();
        let i0 = mb.const_i32(0);
        let acc0 = mb.const_f32(0.0);
        let limit = mb.const_i32(10);
        let outs = mb
            .while_loop(
                "sumloop",
                &[i0, acc0],
                |b, state| b.ilt(state[0], limit),
                |b, state| {
                    let one = b.const_i32(1);
                    let i2 = b.iadd(state[0], one)?;
                    let acc2 = b.add_const(state[1], 1.0)?;
                    Ok(vec![i2, acc2])
                },
            )
            .unwrap();
        mb.set_outputs(&[outs[1]]).unwrap();
        let m = mb.finish().unwrap();
        m.validate().unwrap();
        // while_loop makes at least 3 SubGraphs: W, cond_then, cond_else.
        assert!(m.subgraphs.len() >= 3);
    }

    #[test]
    fn out_of_scope_wire_is_rejected() {
        let mut mb = ModuleBuilder::new();
        // Build one subgraph, keep a wire local to it.
        let mut leaked = None;
        let _a = mb
            .subgraph("a", &[], &[DType::F32], |b| {
                let c = b.const_f32(1.0);
                leaked = Some(c);
                Ok(vec![c])
            })
            .unwrap();
        // Using the leaked wire in a *sibling* subgraph must fail:
        let res = mb.subgraph("b", &[], &[DType::F32], |b| {
            let l = leaked.unwrap();
            Ok(vec![b.identity(l)?])
        });
        assert!(matches!(res, Err(GraphError::OutOfScope { .. })));
    }

    #[test]
    fn double_definition_and_undefined_are_rejected() {
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("f", &[], &[DType::F32]);
        mb.define_subgraph(&h, |b| Ok(vec![b.const_f32(0.0)]))
            .unwrap();
        assert!(mb
            .define_subgraph(&h, |b| Ok(vec![b.const_f32(1.0)]))
            .is_err());

        let mut mb2 = ModuleBuilder::new();
        let _h = mb2.declare_subgraph("ghost", &[], &[DType::F32]);
        let c = mb2.const_f32(0.0);
        mb2.set_outputs(&[c]).unwrap();
        assert!(matches!(mb2.finish(), Err(GraphError::Undefined { .. })));
    }

    #[test]
    fn output_arity_and_dtype_checked() {
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("f", &[], &[DType::F32, DType::F32]);
        let r = mb.define_subgraph(&h, |b| Ok(vec![b.const_f32(0.0)]));
        assert!(r.is_err(), "arity mismatch");

        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("g", &[], &[DType::F32]);
        let r = mb.define_subgraph(&h, |b| Ok(vec![b.const_i32(0)]));
        assert!(r.is_err(), "dtype mismatch");
    }

    #[test]
    fn invoke_arg_checking() {
        let mut mb = ModuleBuilder::new();
        let h = mb
            .subgraph("id", &[DType::F32], &[DType::F32], |b| {
                let x = b.input(0)?;
                Ok(vec![x])
            })
            .unwrap();
        let i = mb.const_i32(0);
        assert!(mb.invoke(&h, &[]).is_err(), "missing arg");
        assert!(mb.invoke(&h, &[i]).is_err(), "wrong dtype");
    }

    #[test]
    fn keep_sets_default_empty() {
        let mut mb = ModuleBuilder::new();
        let c = mb.const_f32(0.0);
        mb.set_outputs(&[c]).unwrap();
        let m = mb.finish().unwrap();
        assert!(m.keep_sets.get(&GraphRef::Main).is_none());
    }

    #[test]
    fn nested_cond_transitive_capture() {
        // A wire from main used two scopes deep (sg -> cond branch) must
        // appear as a capture at *both* levels.
        let mut mb = ModuleBuilder::new();
        let outer = mb.const_f32(7.0);
        let sg = mb
            .subgraph("nest", &[DType::I32], &[DType::F32], |b| {
                let p = b.input(0)?;
                let out = b.cond1(
                    p,
                    DType::F32,
                    |b| b.add(outer, outer),
                    |b| Ok(b.const_f32(0.0)),
                )?;
                Ok(vec![out])
            })
            .unwrap();
        let flag = mb.const_i32(1);
        let out = mb.invoke(&sg, &[flag]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        m.validate().unwrap();
        let nest = m.subgraphs.iter().find(|s| s.name == "nest").unwrap();
        assert_eq!(nest.n_captures(), 1, "main wire captured into sg");
        let then_b = m.subgraphs.iter().find(|s| s.name == "cond_then").unwrap();
        assert_eq!(then_b.n_captures(), 1, "sg capture captured into branch");
    }
}
