//! Graphviz DOT export for debugging recursive modules.
//!
//! The paper argues (§7, vs. TensorFlow Fold) that keeping the recursive
//! structure *in the graph* preserves debuggability: the rendered module
//! shows each SubGraph as a cluster, `Invoke` edges point at the invoked
//! cluster, and node positions correspond one-to-one to the user's code.

use crate::analyze::{Diagnostic, Severity};
use crate::module::Module;
use crate::op::OpKind;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Diagnosed-node overlay: worst severity per `(subgraph, node)`.
type Overlay = HashMap<(Option<u32>, u32), Severity>;

/// Renders the whole module (main graph + every SubGraph) as a DOT digraph.
pub fn module_to_dot(m: &Module) -> String {
    module_to_dot_annotated(m, &[])
}

/// Like [`module_to_dot`], but colors diagnosed nodes: errors fill
/// `lightcoral`, warnings `orange` (`rdg_lint --dot` uses this so a defect
/// is visible at a glance in the rendered module).
pub fn module_to_dot_annotated(m: &Module, diags: &[Diagnostic]) -> String {
    let mut overlay: Overlay = HashMap::new();
    for d in diags {
        let Some(node) = d.node else { continue };
        let key = (d.subgraph.map(|s| s.0), node.0);
        let sev = overlay.entry(key).or_insert(d.severity);
        *sev = (*sev).max(d.severity);
    }
    let mut s = String::new();
    let _ = writeln!(s, "digraph module {{");
    let _ = writeln!(s, "  rankdir=LR; node [shape=box, fontsize=10];");
    emit_graph(&mut s, m, None, &overlay);
    for sg in &m.subgraphs {
        emit_graph(&mut s, m, Some(sg.id.0), &overlay);
    }
    let _ = writeln!(s, "}}");
    s
}

fn emit_graph(s: &mut String, m: &Module, sg: Option<u32>, overlay: &Overlay) {
    let (graph, label, prefix) = match sg {
        None => (&m.main, "main".to_string(), "m".to_string()),
        Some(i) => {
            let sub = &m.subgraphs[i as usize];
            (&sub.graph, sub.name.clone(), format!("s{i}"))
        }
    };
    let _ = writeln!(s, "  subgraph cluster_{prefix} {{");
    let _ = writeln!(s, "    label=\"{}\";", escape(&label));
    for (i, node) in graph.nodes.iter().enumerate() {
        // Diagnostic coloring wins over the structural palette.
        let color = match overlay.get(&(sg, i as u32)) {
            Some(Severity::Error) => ", style=filled, fillcolor=lightcoral, penwidth=2",
            Some(Severity::Warning) => ", style=filled, fillcolor=orange, penwidth=2",
            None => match &node.op {
                OpKind::Invoke { .. } => ", style=filled, fillcolor=lightblue",
                OpKind::Cond { .. } => ", style=filled, fillcolor=lightyellow",
                OpKind::Input { .. } => ", style=filled, fillcolor=lightgray",
                OpKind::Param(_) => ", style=filled, fillcolor=lightgreen",
                OpKind::FwdValue { .. } => ", style=dashed",
                _ => "",
            },
        };
        let _ = writeln!(
            s,
            "    {prefix}_n{i} [label=\"{}\"{color}];",
            escape(&node.op.to_string())
        );
        for inp in &node.inputs {
            let _ = writeln!(s, "    {prefix}_n{} -> {prefix}_n{i};", inp.node.0);
        }
        // Cross-cluster reference edges for invokes/conds.
        match &node.op {
            OpKind::Invoke { sub, .. } => {
                let t = target_anchor(m, sub.0);
                let _ = writeln!(s, "    {prefix}_n{i} -> {t} [style=dotted, color=blue];");
            }
            OpKind::Cond {
                sub_then, sub_else, ..
            } => {
                for t in [sub_then.0, sub_else.0] {
                    let a = target_anchor(m, t);
                    let _ = writeln!(s, "    {prefix}_n{i} -> {a} [style=dotted, color=orange];");
                }
            }
            _ => {}
        }
    }
    let _ = writeln!(s, "  }}");
}

/// First node of a SubGraph cluster, used as the dotted-edge anchor.
fn target_anchor(m: &Module, sg: u32) -> String {
    let g = &m.subgraphs[sg as usize].graph;
    if g.is_empty() {
        format!("s{sg}_empty")
    } else {
        format!("s{sg}_n0")
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use rdg_tensor::DType;

    #[test]
    fn dot_renders_recursion() {
        let mut mb = ModuleBuilder::new();
        let h = mb.declare_subgraph("loop", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.igt(n, zero)?;
            let out = b.cond1(
                p,
                DType::I32,
                |b| {
                    let one = b.const_i32(1);
                    let m = b.isub(n, one)?;
                    Ok(b.invoke(&h, &[m])?[0])
                },
                |b| b.identity(n),
            )?;
            Ok(vec![out])
        })
        .unwrap();
        let start = mb.const_i32(3);
        let out = mb.invoke(&h, &[start]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        let dot = module_to_dot(&m);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_m"), "main cluster present");
        assert!(dot.contains("Invoke"), "invoke nodes rendered");
        assert!(dot.contains("style=dotted"), "cross-cluster edges rendered");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
