//! The [`Graph`] container: port-addressed nodes forming a DAG.

use crate::op::OpKind;
use rdg_tensor::DType;
use std::fmt;

/// Index of a node within one [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A reference to one output port of a node (TensorFlow-style edges).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PortRef {
    /// The producing node.
    pub node: NodeId,
    /// Which of its outputs (0 for single-output ops).
    pub port: u16,
}

impl PortRef {
    /// Port 0 of `node` — the common single-output case.
    pub fn of(node: NodeId) -> Self {
        PortRef { node, port: 0 }
    }
}

impl fmt::Display for PortRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:{}", self.node.0, self.port)
    }
}

/// One operation node: an op kind plus its input edges.
#[derive(Clone, Debug)]
pub struct Node {
    /// What the node computes.
    pub op: OpKind,
    /// Input edges, in kernel-argument order.
    pub inputs: Vec<PortRef>,
    /// Debug name (auto-generated unless overridden).
    pub name: String,
}

/// Errors raised during graph construction and validation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge referenced a node id that does not exist.
    DanglingNode {
        /// The offending id.
        node: u32,
        /// Where it was referenced.
        ctx: String,
    },
    /// An edge referenced an output port beyond the producer's arity.
    BadPort {
        /// The offending reference.
        port: String,
        /// The producer's actual output arity.
        arity: usize,
        /// Producer node as `name (OpKind)`.
        producer: String,
        /// Where the reference occurred (`graph/consumer`).
        ctx: String,
    },
    /// The graph contains a dependency cycle (within one graph — recursion
    /// between SubGraphs is fine, cycles between *nodes* are not).
    Cycle {
        /// Graph name for diagnostics.
        graph: String,
        /// Names of (some of) the nodes stuck on the cycle.
        nodes: String,
    },
    /// A wire was used in a scope where its defining graph is not visible.
    OutOfScope {
        /// Description of the wire.
        wire: String,
    },
    /// An invoke/cond signature didn't match its SubGraph.
    SignatureMismatch {
        /// Description of the mismatch.
        msg: String,
    },
    /// A forward-declared SubGraph was never defined.
    Undefined {
        /// The SubGraph's name.
        name: String,
    },
    /// Catch-all for builder misuse.
    Invalid {
        /// Description.
        msg: String,
    },
    /// The static analyzer rejected the module (see
    /// [`crate::analyze::check_module`]).
    Analysis {
        /// The first denied diagnostic's stable code (e.g.
        /// `"shape-mismatch"`).
        code: &'static str,
        /// Rendering of every denied diagnostic.
        msg: String,
    },
}

impl GraphError {
    /// Creates an [`GraphError::Invalid`] from anything displayable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        GraphError::Invalid {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::DanglingNode { node, ctx } => {
                write!(f, "dangling node id n{node} referenced from {ctx}")
            }
            GraphError::BadPort {
                port,
                arity,
                producer,
                ctx,
            } => {
                write!(
                    f,
                    "port {port} out of range: producer {producer} has {arity} output(s), \
                     referenced from {ctx}"
                )
            }
            GraphError::Cycle { graph, nodes } => {
                write!(f, "graph '{graph}' contains a cycle through [{nodes}]")
            }
            GraphError::OutOfScope { wire } => write!(f, "wire {wire} is not in scope"),
            GraphError::SignatureMismatch { msg } => write!(f, "signature mismatch: {msg}"),
            GraphError::Undefined { name } => {
                write!(f, "SubGraph '{name}' was declared but never defined")
            }
            GraphError::Invalid { msg } => write!(f, "invalid graph: {msg}"),
            GraphError::Analysis { code, msg } => {
                write!(f, "static analysis rejected the module [{code}]: {msg}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// A DAG of operation nodes with typed output ports.
///
/// `Graph` is a pure data container; construction goes through
/// [`crate::builder::ModuleBuilder`], execution through `rdg-exec`.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    /// All nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// Output dtypes of each node, parallel to `nodes`.
    pub out_dtypes: Vec<Vec<DType>>,
    /// The graph's result ports, delivered to the caller on completion.
    pub outputs: Vec<PortRef>,
    /// Nodes with `OpKind::Input`, ordered by input index.
    pub input_nodes: Vec<NodeId>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range ids; ids created by the builder are always
    /// valid for the graph that created them.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Output arity of a node.
    pub fn n_outputs(&self, id: NodeId) -> usize {
        self.nodes[id.0 as usize].op.n_outputs()
    }

    /// Dtype of an output port.
    pub fn port_dtype(&self, p: PortRef) -> DType {
        self.out_dtypes[p.node.0 as usize][p.port as usize]
    }

    /// Appends a node (builder-internal; does not validate edges).
    pub fn push_node(&mut self, op: OpKind, inputs: Vec<PortRef>, dtypes: Vec<DType>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        let name = format!("{}_{}", op.mnemonic().to_lowercase(), id.0);
        if let OpKind::Input { .. } = op {
            self.input_nodes.push(id);
        }
        self.nodes.push(Node { op, inputs, name });
        self.out_dtypes.push(dtypes);
        id
    }

    /// Per-node consumer lists: `consumers[n]` = nodes that take any output
    /// of `n` as input (deduplicated, with multiplicity collapsed).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut cons: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let this = NodeId(i as u32);
            for inp in &node.inputs {
                let list = &mut cons[inp.node.0 as usize];
                if list.last() != Some(&this) {
                    list.push(this);
                }
            }
        }
        cons
    }

    /// Number of *distinct producer nodes* each node waits on.
    ///
    /// Multiple edges from the same producer count once, matching the
    /// executor's notify-once-per-producer completion protocol.
    pub fn pending_counts(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .map(|n| {
                let mut prods: Vec<u32> = n.inputs.iter().map(|p| p.node.0).collect();
                prods.sort_unstable();
                prods.dedup();
                prods.len() as u32
            })
            .collect()
    }

    /// Topological order of the nodes, or a [`GraphError::Cycle`].
    pub fn topo_order(&self, name: &str) -> crate::Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indeg = self.pending_counts();
        let cons = self.consumers();
        let mut queue: Vec<NodeId> = (0..n)
            .filter(|&i| indeg[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            for &c in &cons[id.0 as usize] {
                indeg[c.0 as usize] -= 1;
                if indeg[c.0 as usize] == 0 {
                    queue.push(c);
                }
            }
        }
        if order.len() != n {
            let mut done = vec![false; n];
            for id in &order {
                done[id.0 as usize] = true;
            }
            let stuck: Vec<&str> = self
                .nodes
                .iter()
                .enumerate()
                .filter(|(i, _)| !done[*i])
                .map(|(_, nd)| nd.name.as_str())
                .take(4)
                .collect();
            return Err(GraphError::Cycle {
                graph: name.to_string(),
                nodes: stuck.join(", "),
            });
        }
        Ok(order)
    }

    /// Structural validation: every edge must reference an existing node and
    /// a valid port, and the graph must be acyclic.
    pub fn validate(&self, name: &str) -> crate::Result<()> {
        for (i, node) in self.nodes.iter().enumerate() {
            for inp in &node.inputs {
                let pid = inp.node.0 as usize;
                if pid >= self.nodes.len() {
                    return Err(GraphError::DanglingNode {
                        node: inp.node.0,
                        ctx: format!("{name}/{}", node.name),
                    });
                }
                let arity = self.nodes[pid].op.n_outputs();
                if inp.port as usize >= arity {
                    let p = &self.nodes[pid];
                    return Err(GraphError::BadPort {
                        port: inp.to_string(),
                        arity,
                        producer: format!("{} ({})", p.name, p.op.mnemonic()),
                        ctx: format!("{name}/{}", node.name),
                    });
                }
            }
            // Output dtype table must be consistent with arity.
            if self.out_dtypes[i].len() != node.op.n_outputs() {
                return Err(GraphError::invalid(format!(
                    "{name}/{}: dtype table has {} entries for {} outputs",
                    node.name,
                    self.out_dtypes[i].len(),
                    node.op.n_outputs()
                )));
            }
        }
        for out in &self.outputs {
            if out.node.0 as usize >= self.nodes.len() {
                return Err(GraphError::DanglingNode {
                    node: out.node.0,
                    ctx: format!("{name}/outputs"),
                });
            }
            let arity = self.nodes[out.node.0 as usize].op.n_outputs();
            if out.port as usize >= arity {
                let p = &self.nodes[out.node.0 as usize];
                return Err(GraphError::BadPort {
                    port: out.to_string(),
                    arity,
                    producer: format!("{} ({})", p.name, p.op.mnemonic()),
                    ctx: format!("{name}/outputs"),
                });
            }
        }
        self.topo_order(name)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_tensor::{DType, Tensor};

    fn leaf(g: &mut Graph, v: f32) -> NodeId {
        g.push_node(
            OpKind::Const(Tensor::scalar_f32(v)),
            vec![],
            vec![DType::F32],
        )
    }

    #[test]
    fn push_and_consume() {
        let mut g = Graph::new();
        let a = leaf(&mut g, 1.0);
        let b = leaf(&mut g, 2.0);
        let c = g.push_node(
            OpKind::Add,
            vec![PortRef::of(a), PortRef::of(b)],
            vec![DType::F32],
        );
        g.outputs.push(PortRef::of(c));
        assert!(g.validate("t").is_ok());
        let cons = g.consumers();
        assert_eq!(cons[a.0 as usize], vec![c]);
        assert_eq!(cons[b.0 as usize], vec![c]);
        assert!(cons[c.0 as usize].is_empty());
    }

    #[test]
    fn pending_counts_dedupe_same_producer() {
        let mut g = Graph::new();
        let a = leaf(&mut g, 1.0);
        // b uses a twice: still waits on one producer.
        let b = g.push_node(
            OpKind::Mul,
            vec![PortRef::of(a), PortRef::of(a)],
            vec![DType::F32],
        );
        let counts = g.pending_counts();
        assert_eq!(counts[a.0 as usize], 0);
        assert_eq!(counts[b.0 as usize], 1);
    }

    #[test]
    fn topo_order_respects_deps() {
        let mut g = Graph::new();
        let a = leaf(&mut g, 1.0);
        let b = g.push_node(OpKind::Neg, vec![PortRef::of(a)], vec![DType::F32]);
        let c = g.push_node(OpKind::Neg, vec![PortRef::of(b)], vec![DType::F32]);
        let order = g.topo_order("t").unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b) && pos(b) < pos(c));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = Graph::new();
        // Forge a cycle manually: n0 <- n1 <- n0.
        let a = g.push_node(
            OpKind::Neg,
            vec![PortRef {
                node: NodeId(1),
                port: 0,
            }],
            vec![DType::F32],
        );
        let _b = g.push_node(OpKind::Neg, vec![PortRef::of(a)], vec![DType::F32]);
        assert!(matches!(g.validate("cyc"), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn dangling_and_bad_port_detected() {
        let mut g = Graph::new();
        let _ = g.push_node(
            OpKind::Neg,
            vec![PortRef {
                node: NodeId(7),
                port: 0,
            }],
            vec![DType::F32],
        );
        assert!(matches!(
            g.validate("t"),
            Err(GraphError::DanglingNode { .. })
        ));

        let mut g = Graph::new();
        let a = leaf(&mut g, 0.0);
        let _ = g.push_node(
            OpKind::Neg,
            vec![PortRef { node: a, port: 3 }],
            vec![DType::F32],
        );
        assert!(matches!(g.validate("t"), Err(GraphError::BadPort { .. })));
    }

    #[test]
    fn input_nodes_are_tracked() {
        let mut g = Graph::new();
        let i0 = g.push_node(
            OpKind::Input {
                index: 0,
                dtype: DType::I32,
            },
            vec![],
            vec![DType::I32],
        );
        let i1 = g.push_node(
            OpKind::Input {
                index: 1,
                dtype: DType::F32,
            },
            vec![],
            vec![DType::F32],
        );
        assert_eq!(g.input_nodes, vec![i0, i1]);
        assert_eq!(g.port_dtype(PortRef::of(i0)), DType::I32);
    }
}
