//! Dataflow-graph IR for recursive deep-learning computations.
//!
//! This crate implements the *programming model* of the EuroSys '18 paper
//! "Improving the Expressiveness of Deep Learning Frameworks with Recursion":
//!
//! * [`Graph`] — a DAG of port-addressed operation nodes ([`op::OpKind`]).
//! * [`SubGraph`] — a graph fragment with a typed signature, the paper's unit
//!   of recursion; semantically a function definition.
//! * [`op::OpKind::Invoke`] — the paper's `InvokeOp`: an ordinary node whose
//!   kernel executes an associated SubGraph. A SubGraph may invoke *itself*,
//!   which is what makes recursion expressible inside a static graph.
//! * [`op::OpKind::Cond`] — functional conditional carrying two branch
//!   SubGraphs; only the taken branch is executed (lazy), which is how the
//!   base case of a recursion terminates the unfolding.
//! * [`builder::ModuleBuilder`] — the user-facing DSL. It supports **forward
//!   declarations** (declare a SubGraph's signature, then define the body
//!   that refers to itself — §5 "Forward declaration" in the paper) and
//!   **automatic outer-reference capture** (free variables of a SubGraph
//!   body are detected and appended to its input list — §5 "Outer
//!   reference"), including transitive capture through nested scopes.
//! * [`Module`] — a library of SubGraphs plus the main graph and parameter
//!   table; the unit submitted to the executor.
//!
//! The IR is executor-agnostic: `rdg-exec` interprets it with a parallel
//! worker pool, and `rdg-autodiff` rewrites modules into training modules by
//! synthesizing gradient SubGraphs with mirrored call sites.

pub mod analysis;
pub mod analyze;
pub mod builder;
pub mod dot;
pub mod graph;
pub mod module;
pub mod op;
pub mod subgraph;

pub use analysis::{op_histogram, work_span, WorkSpan};
pub use analyze::{
    analyze_module, body_is_straight_line, check_module, fuse_class, AbsDim, AbsShape,
    AnalysisConfig, AnalysisReport, BatchabilityReport, Diagnostic, FuseClass, Severity, ShapeMap,
};
pub use builder::{ModuleBuilder, SubGraphHandle, Wire};
pub use graph::{Graph, GraphError, Node, NodeId, PortRef};
pub use module::{GraphRef, Module, ParamSpec};
pub use op::{CallSiteId, OpKind, ParamId};
pub use subgraph::{SubGraph, SubGraphId};

/// Result alias for graph-construction fallibility.
pub type Result<T> = std::result::Result<T, GraphError>;
