//! [`Module`]: a library of SubGraphs, a main graph, and parameters.

use crate::graph::Graph;
use crate::op::{OpKind, ParamId};
use crate::subgraph::{SubGraph, SubGraphId};
use rdg_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Which graph a frame / cache entry refers to: the main graph or a SubGraph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GraphRef {
    /// The module's main graph (the root frame).
    Main,
    /// A SubGraph.
    Sub(SubGraphId),
}

/// Declaration of a trainable parameter: name plus initial value.
///
/// Parameters live *outside* graphs in a parameter store; `Param` nodes read
/// them and `GradSink` nodes accumulate gradients into the matching slot.
#[derive(Clone, Debug)]
pub struct ParamSpec {
    /// Human-readable name (unique within the module).
    pub name: String,
    /// Initial value; also fixes the shape and dtype.
    pub init: Tensor,
}

/// A complete executable unit: SubGraph library + main graph + parameters.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// All SubGraphs, indexed by [`SubGraphId`].
    pub subgraphs: Vec<SubGraph>,
    /// The main graph submitted by the client.
    pub main: Graph,
    /// Trainable parameters.
    pub params: Vec<ParamSpec>,
    /// Number of call sites allocated (next fresh id).
    pub n_sites: u32,
    /// Keep-sets: for each graph, the (node, port) pairs whose forward
    /// values must be cached for backpropagation. Filled by `rdg-autodiff`;
    /// empty for inference modules.
    pub keep_sets: HashMap<GraphRef, HashSet<(crate::graph::NodeId, u16)>>,
    /// Shape keep-sets: ports whose forward *shapes* (not values) must be
    /// cached, serving `FwdZeros` shape witnesses in gradient graphs.
    pub shape_keep_sets: HashMap<GraphRef, HashSet<(crate::graph::NodeId, u16)>>,
}

impl Module {
    /// Borrows a SubGraph by id.
    ///
    /// # Panics
    ///
    /// Panics on a dangling id; ids are only minted by the builder.
    pub fn subgraph(&self, id: SubGraphId) -> &SubGraph {
        &self.subgraphs[id.0 as usize]
    }

    /// Borrows the graph behind a [`GraphRef`].
    pub fn graph(&self, r: GraphRef) -> &Graph {
        match r {
            GraphRef::Main => &self.main,
            GraphRef::Sub(id) => &self.subgraphs[id.0 as usize].graph,
        }
    }

    /// Display name of a graph (diagnostics).
    pub fn graph_name(&self, r: GraphRef) -> String {
        match r {
            GraphRef::Main => "main".to_string(),
            GraphRef::Sub(id) => self.subgraphs[id.0 as usize].name.clone(),
        }
    }

    /// Looks up a parameter id by name.
    pub fn param_by_name(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| ParamId(i as u32))
    }

    /// Whole-module validation.
    ///
    /// Checks every graph structurally, then cross-checks every `Invoke` and
    /// `Cond` against the signatures of the SubGraphs they reference, and
    /// verifies call-site uniqueness (paths would collide otherwise).
    pub fn validate(&self) -> crate::Result<()> {
        self.main.validate("main")?;
        for sg in &self.subgraphs {
            sg.validate()?;
        }
        let mut seen_sites = HashSet::new();
        let mut check_graph = |g: &Graph, gname: &str| -> crate::Result<()> {
            for node in &g.nodes {
                match &node.op {
                    OpKind::Invoke {
                        sub,
                        site,
                        n_out,
                        mirror,
                    } => {
                        let sg = self.subgraphs.get(sub.0 as usize).ok_or_else(|| {
                            crate::GraphError::invalid(format!(
                                "{gname}/{}: invoke of unknown SubGraph sg{}",
                                node.name, sub.0
                            ))
                        })?;
                        if node.inputs.len() != sg.n_inputs() {
                            return Err(crate::GraphError::SignatureMismatch {
                                msg: format!(
                                    "{gname}/{}: invoke of '{}' passes {} args, needs {}",
                                    node.name,
                                    sg.name,
                                    node.inputs.len(),
                                    sg.n_inputs()
                                ),
                            });
                        }
                        if *n_out as usize != sg.n_outputs() {
                            return Err(crate::GraphError::SignatureMismatch {
                                msg: format!(
                                    "{gname}/{}: invoke of '{}' expects {} outputs, SubGraph has {}",
                                    node.name,
                                    sg.name,
                                    n_out,
                                    sg.n_outputs()
                                ),
                            });
                        }
                        if !mirror && !seen_sites.insert(*site) {
                            return Err(crate::GraphError::invalid(format!(
                                "call site {} reused at {gname}/{}",
                                site.0, node.name
                            )));
                        }
                    }
                    OpKind::Cond {
                        sub_then,
                        sub_else,
                        site_then,
                        site_else,
                        n_then_in,
                        n_out,
                        mirror,
                    } => {
                        let st = self.subgraphs.get(sub_then.0 as usize).ok_or_else(|| {
                            crate::GraphError::invalid(format!(
                                "{gname}/{}: cond references unknown then-branch",
                                node.name
                            ))
                        })?;
                        let se = self.subgraphs.get(sub_else.0 as usize).ok_or_else(|| {
                            crate::GraphError::invalid(format!(
                                "{gname}/{}: cond references unknown else-branch",
                                node.name
                            ))
                        })?;
                        if st.output_dtypes != se.output_dtypes {
                            return Err(crate::GraphError::SignatureMismatch {
                                msg: format!(
                                    "{gname}/{}: cond branches disagree on outputs ({:?} vs {:?})",
                                    node.name, st.output_dtypes, se.output_dtypes
                                ),
                            });
                        }
                        if *n_out as usize != st.n_outputs() {
                            return Err(crate::GraphError::SignatureMismatch {
                                msg: format!(
                                    "{gname}/{}: cond expects {} outputs, branches have {}",
                                    node.name,
                                    n_out,
                                    st.n_outputs()
                                ),
                            });
                        }
                        let expect = 1 + st.n_inputs() + se.n_inputs();
                        if node.inputs.len() != expect {
                            return Err(crate::GraphError::SignatureMismatch {
                                msg: format!(
                                    "{gname}/{}: cond wires {} inputs, needs {expect}",
                                    node.name,
                                    node.inputs.len()
                                ),
                            });
                        }
                        if *n_then_in as usize != st.n_inputs() {
                            return Err(crate::GraphError::SignatureMismatch {
                                msg: format!(
                                    "{gname}/{}: cond routes {} inputs to then-branch, needs {}",
                                    node.name,
                                    n_then_in,
                                    st.n_inputs()
                                ),
                            });
                        }
                        if !mirror {
                            for s in [site_then, site_else] {
                                if !seen_sites.insert(*s) {
                                    return Err(crate::GraphError::invalid(format!(
                                        "call site {} reused at {gname}/{}",
                                        s.0, node.name
                                    )));
                                }
                            }
                        }
                    }
                    OpKind::Param(p)
                    | OpKind::GradSink { param: p }
                    | OpKind::GradSinkRows { param: p } => {
                        if p.0 as usize >= self.params.len() {
                            return Err(crate::GraphError::invalid(format!(
                                "{gname}/{}: unknown parameter id {}",
                                node.name, p.0
                            )));
                        }
                    }
                    _ => {}
                }
            }
            Ok(())
        };
        check_graph(&self.main, "main")?;
        for sg in &self.subgraphs {
            check_graph(&sg.graph, &sg.name)?;
        }
        Ok(())
    }

    /// Total node count across the main graph and all SubGraphs.
    pub fn total_nodes(&self) -> usize {
        self.main.len() + self.subgraphs.iter().map(|s| s.graph.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use rdg_tensor::DType;

    #[test]
    fn empty_module_is_valid() {
        let m = Module::default();
        assert!(m.validate().is_ok());
        assert_eq!(m.total_nodes(), 0);
    }

    #[test]
    fn param_lookup_by_name() {
        let mut mb = ModuleBuilder::new();
        let _w = mb.param("W", Tensor::zeros([2, 2]));
        let x = mb.constant(Tensor::ones([2, 2]));
        mb.set_outputs(&[x]).unwrap();
        let m = mb.finish().unwrap();
        assert_eq!(m.param_by_name("W"), Some(ParamId(0)));
        assert_eq!(m.param_by_name("nope"), None);
    }

    #[test]
    fn invoke_arity_mismatch_is_caught() {
        // Build a valid module, then corrupt an invoke's inputs.
        let mut mb = ModuleBuilder::new();
        let sg = mb.declare_subgraph("id", &[DType::F32], &[DType::F32]);
        mb.define_subgraph(&sg, |b| {
            let x = b.input(0)?;
            Ok(vec![x])
        })
        .unwrap();
        let c = mb.constant(Tensor::scalar_f32(1.0));
        let out = mb.invoke(&sg, &[c]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let mut m = mb.finish().unwrap();
        assert!(m.validate().is_ok());
        // Corrupt: drop the invoke's argument.
        for node in &mut m.main.nodes {
            if matches!(node.op, OpKind::Invoke { .. }) {
                node.inputs.clear();
            }
        }
        assert!(m.validate().is_err());
    }
}
