//! Operation kinds: the vocabulary of graph nodes.

use crate::subgraph::SubGraphId;
use rdg_tensor::Tensor;
use std::fmt;

/// Identifier of a trainable parameter in the module's parameter table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ParamId(pub u32);

/// Identifier of a SubGraph call site, unique across a [`crate::Module`].
///
/// Call sites are the building blocks of *invocation paths*: the backprop
/// cache keys a forward value by the chain of call sites from the root frame
/// (the paper's "InvokeOp's topological position combined with the key of
/// the parent InvokeOp"). Gradient graphs reuse the forward site ids so the
/// backward execution reconstructs identical paths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct CallSiteId(pub u32);

/// Every operation a graph node can perform.
///
/// Most variants are thin wrappers over `rdg_tensor::ops` kernels; the
/// structural ones (`Invoke`, `Cond`, `FwdValue`, `GradSink*`) are
/// interpreted by the executor itself.
#[derive(Clone, Debug)]
pub enum OpKind {
    // -- graph interface -------------------------------------------------
    /// Formal input `index` of the enclosing graph (placeholder).
    Input {
        /// Position in the graph's input list.
        index: usize,
        /// Element type of the fed value.
        dtype: rdg_tensor::DType,
    },
    /// Compile-time constant.
    Const(Tensor),
    /// Read of a trainable parameter from the parameter store.
    Param(ParamId),
    /// Pass-through (used for output wiring and graph surgery).
    Identity,

    // -- f32 arithmetic ---------------------------------------------------
    /// Elementwise addition (same shapes).
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise (Hadamard) multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise negation.
    Neg,
    /// Multiplication by a static constant.
    Scale(f32),
    /// Addition of a static constant.
    AddConst(f32),
    /// Multiplication by a runtime scalar tensor: `(x, s) -> x·s`.
    ScalarMul,
    /// Dense matrix product `A·B`.
    MatMul,
    /// Dense matrix product `Aᵀ·B` (gradient form).
    MatMulAT,
    /// Dense matrix product `A·Bᵀ` (gradient form).
    MatMulBT,
    /// Row-broadcast bias addition `[m,n] + [n]`.
    AddBias,
    /// Bilinear tensor product `(x, V) → x·V_t·xᵀ` (RNTN).
    Bilinear,

    // -- activations -------------------------------------------------------
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear unit.
    Relu,
    /// Row-wise softmax.
    Softmax,
    /// Row-wise log-softmax.
    LogSoftmax,

    // -- shape -------------------------------------------------------------
    /// Column concatenation of two matrices.
    ConcatCols,
    /// Column slice `[lo, hi)`.
    SliceCols {
        /// First column (inclusive).
        lo: usize,
        /// Last column (exclusive).
        hi: usize,
    },
    /// Transpose of a matrix.
    Transpose,
    /// Stack N row vectors into a matrix (variadic).
    StackRows,

    // -- reductions ---------------------------------------------------------
    /// Sum of all elements to a scalar.
    SumAll,
    /// Mean of all elements to a scalar.
    MeanAll,
    /// Column sums `[m,n] → [n]`.
    SumAxis0,

    // -- indexing ------------------------------------------------------------
    /// Row gather `(table, ids) → rows`.
    GatherRows,
    /// Single-row extraction `(mat, i) → [1,d]`.
    GetRow,
    /// Functional row replacement `(mat, i, row) → mat'` (copy-on-write).
    SetRow,
    /// One-hot encoding of integer ids.
    OneHot {
        /// Number of classes (output width).
        classes: usize,
    },
    /// Row-wise argmax to `i32`.
    ArgmaxRows,

    // -- loss -----------------------------------------------------------------
    /// Fused softmax cross-entropy `(logits, labels) → loss[m]`.
    SoftmaxXent,

    // -- i32 scalar arithmetic / predicates ------------------------------------
    /// Scalar integer addition.
    IAdd,
    /// Scalar integer subtraction.
    ISub,
    /// Scalar integer multiplication.
    IMul,
    /// Scalar integer division.
    IDiv,
    /// Scalar `<` producing `0/1`.
    ILt,
    /// Scalar `<=` producing `0/1`.
    ILe,
    /// Scalar `>` producing `0/1`.
    IGt,
    /// Scalar `>=` producing `0/1`.
    IGe,
    /// Scalar `==` producing `0/1`.
    IEq,
    /// Logical AND of predicates.
    And,
    /// Logical OR of predicates.
    Or,
    /// Logical NOT of a predicate.
    Not,
    /// Element gather from a rank-1 `i32` tensor: `(vec, i) → scalar`.
    GatherScalarI32,
    /// Element count of any tensor, as an `i32` scalar.
    Len,
    /// `f32` scalar threshold predicate: `x > c` as `i32` `0/1`. This is how
    /// dynamically-structured models (TD-TreeLSTM) turn a *computed value*
    /// into a control-flow decision at run time.
    FGtConst(f32),
    /// Zeros of runtime-determined row count: `(n: i32 scalar) → f32 [n, cols]`.
    ZerosDyn {
        /// Number of columns.
        cols: usize,
    },

    // -- control flow ------------------------------------------------------------
    /// The paper's `InvokeOp`: executes SubGraph `sub` with this node's
    /// inputs as the SubGraph's inputs; the SubGraph's outputs become this
    /// node's output ports.
    Invoke {
        /// The SubGraph to execute.
        sub: SubGraphId,
        /// Call-site id; extends the invocation path. Unique in the module
        /// unless `mirror` is set.
        site: CallSiteId,
        /// Number of output ports (== `sub`'s output arity).
        n_out: u16,
        /// Set on gradient invokes: the site id *mirrors* the forward
        /// invoke's site so the backward frame reconstructs the forward
        /// invocation path and finds its cached activations.
        mirror: bool,
    },
    /// Functional conditional. Input 0 is an `i32` predicate; the remaining
    /// inputs are the captured inputs of the two branch SubGraphs
    /// (`then` block first). Exactly one branch executes.
    Cond {
        /// Branch executed when the predicate is non-zero.
        sub_then: SubGraphId,
        /// Branch executed when the predicate is zero.
        sub_else: SubGraphId,
        /// Call site of the then-branch.
        site_then: CallSiteId,
        /// Call site of the else-branch.
        site_else: CallSiteId,
        /// Number of inputs routed to the then-branch (following the
        /// predicate); the rest go to the else-branch.
        n_then_in: u16,
        /// Number of output ports (== either branch's output arity).
        n_out: u16,
        /// Set on gradient conds: sites mirror the forward cond's sites.
        mirror: bool,
    },

    // -- autodiff support ----------------------------------------------------------
    /// Reads the forward value of port `of` in the forward twin of the
    /// enclosing gradient SubGraph, through the backprop cache at the
    /// mirrored invocation path.
    FwdValue {
        /// Port in the forward graph whose cached value to read.
        of: crate::graph::PortRef,
    },
    /// Produces a zero tensor shaped like the forward value of port `of`,
    /// through the *shape* cache — used as a shape witness by gradient
    /// kernels so large forward intermediates need not be retained.
    FwdZeros {
        /// Port in the forward graph whose cached shape to use.
        of: crate::graph::PortRef,
    },
    /// Accumulates a dense gradient into the gradient store for `param`.
    GradSink {
        /// Target parameter.
        param: ParamId,
    },
    /// Accumulates a row-sparse gradient `(ids, rows)` for an embedding
    /// table parameter.
    GradSinkRows {
        /// Target parameter.
        param: ParamId,
    },
    /// Zeros with the shape of the input.
    ZerosLike,
    /// Ones with the shape of the input.
    OnesLike,

    // -- gradient kernels -------------------------------------------------------------
    /// `(y, dy) → dy ⊙ (1 - y²)`.
    TanhGrad,
    /// `(y, dy) → dy ⊙ y(1-y)`.
    SigmoidGrad,
    /// `(y, dy) → dy ⊙ [y > 0]`.
    ReluGrad,
    /// Softmax backward `(y, dy)`.
    SoftmaxGrad,
    /// Log-softmax backward `(y, dy)`.
    LogSoftmaxGrad,
    /// Cross-entropy backward `(logits, labels, dy)`.
    SoftmaxXentGrad,
    /// Mean-all backward `(x, dy)`.
    MeanAllGrad,
    /// Sum-all backward `(x, dy)` — fills `x`'s shape with `dy`.
    FillLike,
    /// Sum-axis0 backward `(x, dy)` — repeats `dy` over `x`'s rows.
    BroadcastRowsLike,
    /// Column-slice backward `(x, dy)` at offset `lo`.
    PadColsLike {
        /// Column offset where `dy` is re-embedded.
        lo: usize,
    },
    /// Column-concat backward `(a_like, b_like, dy)`: slices `dy` into the
    /// first or second operand's column range, with widths taken from the
    /// shape witnesses.
    SliceColsLike {
        /// `false` → the first operand's slice, `true` → the second's.
        take_second: bool,
    },
    /// Gather backward `(table_like, ids, dy) → d_table`.
    ScatterRowsLike,
    /// Row-extraction backward `(mat_like, i, dy_row) → d_mat`.
    ScatterRowLike,
    /// Bilinear backward w.r.t. `x`: `(x, v, dy)`.
    BilinearGradX,
    /// Bilinear backward w.r.t. `v`: `(x, v_like, dy)`.
    BilinearGradV,
}

impl OpKind {
    /// Number of output ports this op produces.
    pub fn n_outputs(&self) -> usize {
        match self {
            OpKind::Invoke { n_out, .. } | OpKind::Cond { n_out, .. } => *n_out as usize,
            _ => 1,
        }
    }

    /// Short mnemonic used in diagnostics and DOT output.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Input { .. } => "Input",
            OpKind::Const(_) => "Const",
            OpKind::Param(_) => "Param",
            OpKind::Identity => "Identity",
            OpKind::Add => "Add",
            OpKind::Sub => "Sub",
            OpKind::Mul => "Mul",
            OpKind::Div => "Div",
            OpKind::Neg => "Neg",
            OpKind::Scale(_) => "Scale",
            OpKind::AddConst(_) => "AddConst",
            OpKind::ScalarMul => "ScalarMul",
            OpKind::MatMul => "MatMul",
            OpKind::MatMulAT => "MatMulAT",
            OpKind::MatMulBT => "MatMulBT",
            OpKind::AddBias => "AddBias",
            OpKind::Bilinear => "Bilinear",
            OpKind::Tanh => "Tanh",
            OpKind::Sigmoid => "Sigmoid",
            OpKind::Relu => "Relu",
            OpKind::Softmax => "Softmax",
            OpKind::LogSoftmax => "LogSoftmax",
            OpKind::ConcatCols => "ConcatCols",
            OpKind::SliceCols { .. } => "SliceCols",
            OpKind::Transpose => "Transpose",
            OpKind::StackRows => "StackRows",
            OpKind::SumAll => "SumAll",
            OpKind::MeanAll => "MeanAll",
            OpKind::SumAxis0 => "SumAxis0",
            OpKind::GatherRows => "GatherRows",
            OpKind::GetRow => "GetRow",
            OpKind::SetRow => "SetRow",
            OpKind::OneHot { .. } => "OneHot",
            OpKind::ArgmaxRows => "ArgmaxRows",
            OpKind::SoftmaxXent => "SoftmaxXent",
            OpKind::IAdd => "IAdd",
            OpKind::ISub => "ISub",
            OpKind::IMul => "IMul",
            OpKind::IDiv => "IDiv",
            OpKind::ILt => "ILt",
            OpKind::ILe => "ILe",
            OpKind::IGt => "IGt",
            OpKind::IGe => "IGe",
            OpKind::IEq => "IEq",
            OpKind::And => "And",
            OpKind::Or => "Or",
            OpKind::Not => "Not",
            OpKind::GatherScalarI32 => "GatherScalarI32",
            OpKind::Len => "Len",
            OpKind::FGtConst(_) => "FGtConst",
            OpKind::ZerosDyn { .. } => "ZerosDyn",
            OpKind::Invoke { .. } => "Invoke",
            OpKind::Cond { .. } => "Cond",
            OpKind::FwdValue { .. } => "FwdValue",
            OpKind::FwdZeros { .. } => "FwdZeros",
            OpKind::GradSink { .. } => "GradSink",
            OpKind::GradSinkRows { .. } => "GradSinkRows",
            OpKind::ZerosLike => "ZerosLike",
            OpKind::OnesLike => "OnesLike",
            OpKind::TanhGrad => "TanhGrad",
            OpKind::SigmoidGrad => "SigmoidGrad",
            OpKind::ReluGrad => "ReluGrad",
            OpKind::SoftmaxGrad => "SoftmaxGrad",
            OpKind::LogSoftmaxGrad => "LogSoftmaxGrad",
            OpKind::SoftmaxXentGrad => "SoftmaxXentGrad",
            OpKind::MeanAllGrad => "MeanAllGrad",
            OpKind::FillLike => "FillLike",
            OpKind::BroadcastRowsLike => "BroadcastRowsLike",
            OpKind::PadColsLike { .. } => "PadColsLike",
            OpKind::SliceColsLike { .. } => "SliceColsLike",
            OpKind::ScatterRowsLike => "ScatterRowsLike",
            OpKind::ScatterRowLike => "ScatterRowLike",
            OpKind::BilinearGradX => "BilinearGradX",
            OpKind::BilinearGradV => "BilinearGradV",
        }
    }

    /// Returns `true` for ops interpreted structurally by the executor
    /// (frame spawning) rather than by a tensor kernel.
    pub fn is_control_flow(&self) -> bool {
        matches!(self, OpKind::Invoke { .. } | OpKind::Cond { .. })
    }

    /// Returns `true` for side-effecting gradient accumulation sinks.
    pub fn is_sink(&self) -> bool {
        matches!(self, OpKind::GradSink { .. } | OpKind::GradSinkRows { .. })
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Invoke { sub, site, .. } => write!(f, "Invoke(sg{}, site{})", sub.0, site.0),
            OpKind::Cond {
                sub_then, sub_else, ..
            } => {
                write!(f, "Cond(sg{}, sg{})", sub_then.0, sub_else.0)
            }
            OpKind::Scale(s) => write!(f, "Scale({s})"),
            OpKind::AddConst(c) => write!(f, "AddConst({c})"),
            OpKind::SliceCols { lo, hi } => write!(f, "SliceCols[{lo}..{hi}]"),
            OpKind::Param(p) => write!(f, "Param({})", p.0),
            OpKind::FwdValue { of } => write!(f, "FwdValue({}:{})", of.node.0, of.port),
            OpKind::FwdZeros { of } => write!(f, "FwdZeros({}:{})", of.node.0, of.port),
            _ => write!(f, "{}", self.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{NodeId, PortRef};

    #[test]
    fn arity_of_structural_ops() {
        let inv = OpKind::Invoke {
            sub: SubGraphId(0),
            site: CallSiteId(0),
            n_out: 3,
            mirror: false,
        };
        assert_eq!(inv.n_outputs(), 3);
        assert!(inv.is_control_flow());
        assert_eq!(OpKind::Add.n_outputs(), 1);
        assert!(!OpKind::Add.is_control_flow());
    }

    #[test]
    fn sinks_are_flagged() {
        assert!(OpKind::GradSink { param: ParamId(0) }.is_sink());
        assert!(OpKind::GradSinkRows { param: ParamId(1) }.is_sink());
        assert!(!OpKind::MatMul.is_sink());
    }

    #[test]
    fn display_contains_details() {
        let c = OpKind::Cond {
            sub_then: SubGraphId(1),
            sub_else: SubGraphId(2),
            site_then: CallSiteId(10),
            site_else: CallSiteId(11),
            n_then_in: 0,
            n_out: 1,
            mirror: false,
        };
        assert!(c.to_string().contains("sg1"));
        let fv = OpKind::FwdValue {
            of: PortRef {
                node: NodeId(4),
                port: 1,
            },
        };
        assert!(fv.to_string().contains("4:1"));
    }
}
