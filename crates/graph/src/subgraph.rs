//! [`SubGraph`]: the paper's unit of recursion.

use crate::graph::Graph;
use rdg_tensor::DType;

/// Identifier of a [`SubGraph`] within a [`crate::Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SubGraphId(pub u32);

/// A graph fragment with a typed signature — semantically a function.
///
/// A SubGraph's inputs are its formal parameters. The first
/// `explicit_inputs` of them were declared by the user; the rest are
/// *captures*: outer references the builder detected in the body and
/// appended automatically (§5 of the paper). At every invoke site the
/// builder wires the captured outer values as extra arguments, so the
/// executor never distinguishes explicit arguments from captures.
///
/// A SubGraph may contain `Invoke` nodes referring to any SubGraph in the
/// module *including itself* — that self-reference is what expresses
/// recursion in an otherwise static dataflow graph.
#[derive(Clone, Debug)]
pub struct SubGraph {
    /// This SubGraph's id (position in the module table).
    pub id: SubGraphId,
    /// Debug name (e.g. `"TreeLSTM"` or `"∇TreeLSTM"`).
    pub name: String,
    /// The body.
    pub graph: Graph,
    /// Input dtypes: explicit parameters first, then captures.
    pub input_dtypes: Vec<DType>,
    /// How many of `input_dtypes` are explicit (non-capture) parameters.
    pub explicit_inputs: usize,
    /// Output dtypes, parallel to `graph.outputs`.
    pub output_dtypes: Vec<DType>,
    /// For gradient SubGraphs: the forward SubGraph this one differentiates.
    ///
    /// `FwdValue` nodes in this body read cached activations of that forward
    /// twin at the mirrored invocation path.
    pub grad_of: Option<SubGraphId>,
    /// For gradient SubGraphs: maps each *forward input index* to the output
    /// port of this gradient SubGraph that carries its gradient (if any).
    pub grad_input_map: Vec<Option<usize>>,
}

impl SubGraph {
    /// Number of inputs (explicit + captures).
    pub fn n_inputs(&self) -> usize {
        self.input_dtypes.len()
    }

    /// Number of outputs.
    pub fn n_outputs(&self) -> usize {
        self.output_dtypes.len()
    }

    /// Number of capture inputs.
    pub fn n_captures(&self) -> usize {
        self.input_dtypes.len() - self.explicit_inputs
    }

    /// Signature-level validation plus body validation.
    pub fn validate(&self) -> crate::Result<()> {
        self.graph.validate(&self.name)?;
        if self.graph.input_nodes.len() != self.input_dtypes.len() {
            return Err(crate::GraphError::SignatureMismatch {
                msg: format!(
                    "SubGraph '{}' declares {} inputs but body has {} Input nodes",
                    self.name,
                    self.input_dtypes.len(),
                    self.graph.input_nodes.len()
                ),
            });
        }
        if self.graph.outputs.len() != self.output_dtypes.len() {
            return Err(crate::GraphError::SignatureMismatch {
                msg: format!(
                    "SubGraph '{}' declares {} outputs but body wires {}",
                    self.name,
                    self.output_dtypes.len(),
                    self.graph.outputs.len()
                ),
            });
        }
        // Input node dtypes must match the signature.
        for (i, &nid) in self.graph.input_nodes.iter().enumerate() {
            let got = self.graph.out_dtypes[nid.0 as usize][0];
            if got != self.input_dtypes[i] {
                return Err(crate::GraphError::SignatureMismatch {
                    msg: format!(
                        "SubGraph '{}' input {} is {:?} in body, {:?} in signature",
                        self.name, i, got, self.input_dtypes[i]
                    ),
                });
            }
        }
        // Output port dtypes must match the signature.
        for (i, &port) in self.graph.outputs.iter().enumerate() {
            let got = self.graph.port_dtype(port);
            if got != self.output_dtypes[i] {
                return Err(crate::GraphError::SignatureMismatch {
                    msg: format!(
                        "SubGraph '{}' output {} is {:?} in body, {:?} in signature",
                        self.name, i, got, self.output_dtypes[i]
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PortRef;
    use crate::op::OpKind;

    fn trivial_sg() -> SubGraph {
        let mut g = Graph::new();
        let i = g.push_node(
            OpKind::Input {
                index: 0,
                dtype: DType::F32,
            },
            vec![],
            vec![DType::F32],
        );
        let n = g.push_node(OpKind::Neg, vec![PortRef::of(i)], vec![DType::F32]);
        g.outputs.push(PortRef::of(n));
        SubGraph {
            id: SubGraphId(0),
            name: "neg".into(),
            graph: g,
            input_dtypes: vec![DType::F32],
            explicit_inputs: 1,
            output_dtypes: vec![DType::F32],
            grad_of: None,
            grad_input_map: Vec::new(),
        }
    }

    #[test]
    fn valid_subgraph_passes() {
        assert!(trivial_sg().validate().is_ok());
        assert_eq!(trivial_sg().n_captures(), 0);
    }

    #[test]
    fn input_count_mismatch_rejected() {
        let mut sg = trivial_sg();
        sg.input_dtypes.push(DType::I32);
        assert!(sg.validate().is_err());
    }

    #[test]
    fn output_dtype_mismatch_rejected() {
        let mut sg = trivial_sg();
        sg.output_dtypes = vec![DType::I32];
        assert!(sg.validate().is_err());
    }

    #[test]
    fn input_dtype_mismatch_rejected() {
        let mut sg = trivial_sg();
        sg.input_dtypes = vec![DType::I32];
        assert!(sg.validate().is_err());
    }
}
