//! Known-bad graph mutations, each pinned to the exact diagnostic code the
//! static analyzer must emit. Every class here models a defect that — before
//! the analyzer — would have built fine and failed (or silently misbehaved)
//! at run time.

use rdg_graph::analyze::{analyze_module, codes, AnalysisConfig};
use rdg_graph::graph::{GraphError, PortRef};
use rdg_graph::{ModuleBuilder, OpKind};
use rdg_tensor::{DType, Tensor};

/// Asserts that `finish()` rejects the module with the given code.
fn assert_denied(mb: ModuleBuilder, want: &str) {
    match mb.finish() {
        Err(GraphError::Analysis { code, msg }) => {
            assert_eq!(code, want, "wrong diagnostic code; message: {msg}");
        }
        Err(e) => panic!("expected Analysis[{want}], got {e}"),
        Ok(_) => panic!("expected Analysis[{want}], module built clean"),
    }
}

/// Asserts the analyzer emits at least one diagnostic with the given code.
fn assert_code(m: &rdg_graph::Module, want: &str) {
    let report = analyze_module(m);
    assert!(
        report.diagnostics.iter().any(|d| d.code == want),
        "expected a {want} diagnostic, got: {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect::<Vec<_>>()
    );
}

// -- class 1: element-wise shape clash --------------------------------------

#[test]
fn shape_clash_rejected_at_finish() {
    let mut mb = ModuleBuilder::new();
    let a = mb.constant(Tensor::from_f32(vec![2, 2], vec![0.0; 4]).unwrap());
    let b = mb.constant(Tensor::from_f32(vec![3], vec![0.0; 3]).unwrap());
    let c = mb.add(a, b).unwrap();
    mb.set_outputs(&[c]).unwrap();
    assert_denied(mb, codes::SHAPE_MISMATCH);
}

// -- class 2: matmul inner-dimension clash through an invoke ----------------
//
// Regression for the historical loophole: `invoke` only checked arity and
// dtypes, so a call site could pass a shape-incompatible argument and the
// kernel died at run time. Interprocedural inference now rejects it at
// build time.

#[test]
fn shape_incompatible_invoke_arg_rejected() {
    let mut mb = ModuleBuilder::new();
    let w = mb.constant(Tensor::from_f32(vec![3, 4], vec![0.0; 12]).unwrap());
    let f = mb
        .subgraph("proj", &[DType::F32], &[DType::F32], |b| {
            let x = b.input(0)?;
            Ok(vec![b.matmul(x, w)?])
        })
        .unwrap();
    // Arity and dtype are correct; only the inner dimension (5 vs 3) is not.
    let bad = mb.constant(Tensor::from_f32(vec![2, 5], vec![0.0; 10]).unwrap());
    let y = mb.invoke(&f, &[bad]).unwrap()[0];
    mb.set_outputs(&[y]).unwrap();
    assert_denied(mb, codes::SHAPE_MISMATCH);
}

// -- class 3: unguarded recursion -------------------------------------------

#[test]
fn unguarded_self_recursion_rejected() {
    let mut mb = ModuleBuilder::new();
    let w = mb.declare_subgraph("spin", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&w, |b| {
        let n = b.input(0)?;
        // Recurse unconditionally: no cond anywhere on the cycle.
        Ok(vec![b.invoke(&w, &[n])?[0]])
    })
    .unwrap();
    let s = mb.const_i32(3);
    let out = mb.invoke(&w, &[s]).unwrap()[0];
    mb.set_outputs(&[out]).unwrap();
    assert_denied(mb, codes::UNGUARDED_RECURSION);
}

// -- class 4: base case exists but is unreachable ----------------------------

#[test]
fn const_pinned_recursive_branch_rejected() {
    let mut mb = ModuleBuilder::new();
    let w = mb.declare_subgraph("pinned", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&w, |b| {
        let n = b.input(0)?;
        // The predicate is a constant: the recursive arm is always taken,
        // so the syntactic base case can never execute.
        let p = b.const_i32(1);
        let one = b.const_i32(1);
        let out = b.cond1(
            p,
            DType::I32,
            |b| {
                let m = b.isub(n, one)?;
                Ok(b.invoke(&w, &[m])?[0])
            },
            |b| b.identity(n),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let s = mb.const_i32(3);
    let out = mb.invoke(&w, &[s]).unwrap()[0];
    mb.set_outputs(&[out]).unwrap();
    assert_denied(mb, codes::UNREACHABLE_BASE_CASE);
}

// -- class 5: double publish -------------------------------------------------

#[test]
fn double_published_output_rejected() {
    let mut mb = ModuleBuilder::new();
    let c = mb.const_f32(1.0);
    let d = mb.tanh(c).unwrap();
    mb.set_outputs(&[d, d]).unwrap();
    assert_denied(mb, codes::DOUBLE_PUBLISH);
}

// -- class 6: dtype clash (forged graph; the builder API can't express it) --

#[test]
fn forged_dtype_clash_detected() {
    let mut mb = ModuleBuilder::new();
    let a = mb.const_f32(1.0);
    let b = mb.const_f32(2.0);
    let c = mb.add(a, b).unwrap();
    mb.set_outputs(&[c]).unwrap();
    let mut m = mb.finish().unwrap();
    // Splice an i32 producer into the Add's second input, as a buggy graph
    // transform might.
    let forged = m.main.push_node(
        OpKind::Const(Tensor::scalar_i32(7)),
        vec![],
        vec![DType::I32],
    );
    let add = m
        .main
        .nodes
        .iter()
        .position(|n| matches!(n.op, OpKind::Add))
        .unwrap();
    m.main.nodes[add].inputs[1] = PortRef::of(forged);
    assert_code(&m, codes::DTYPE_MISMATCH);
}

// -- class 7: dead node -------------------------------------------------------

#[test]
fn dead_compute_flagged() {
    let mut mb = ModuleBuilder::new();
    let a = mb.const_f32(1.0);
    let used = mb.tanh(a).unwrap();
    let unused = mb.neg(a).unwrap();
    let _ = unused;
    mb.set_outputs(&[used]).unwrap();
    // Dead code is a warning, so the default policy still builds it.
    let m = mb.finish().unwrap();
    assert_code(&m, codes::DEAD_NODE);
}

// -- class 8: unused parameter ------------------------------------------------

#[test]
fn unused_parameter_flagged() {
    let mut mb = ModuleBuilder::new();
    let _pid = mb.param("never_read", Tensor::zeros(vec![4, 4]));
    let c = mb.const_f32(1.0);
    let out = mb.tanh(c).unwrap();
    mb.set_outputs(&[out]).unwrap();
    let m = mb.finish().unwrap();
    assert_code(&m, codes::UNUSED_PARAM);
}

// -- class 9: depth-unbounded recursion ---------------------------------------

#[test]
fn argument_forwarding_recursion_flagged() {
    let mut mb = ModuleBuilder::new();
    let w = mb.declare_subgraph("fwd", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&w, |b| {
        let n = b.input(0)?;
        let zero = b.const_i32(0);
        let p = b.igt(n, zero)?;
        // Guarded, so well-founded in shape — but the recursive call passes
        // `n` through unchanged, so the predicate can never flip.
        let out = b.cond1(
            p,
            DType::I32,
            |b| Ok(b.invoke(&w, &[n])?[0]),
            |b| b.identity(n),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let s = mb.const_i32(3);
    let out = mb.invoke(&w, &[s]).unwrap()[0];
    mb.set_outputs(&[out]).unwrap();
    let m = mb.finish().unwrap();
    assert_code(&m, codes::DEPTH_UNBOUNDED);
}

// -- class 10: fusion-ineligible op in a hot (recursive) subgraph -------------

#[test]
fn heavy_op_in_recursive_subgraph_flagged() {
    let mut mb = ModuleBuilder::new();
    let w = mb.declare_subgraph("hot", &[DType::F32, DType::I32], &[DType::F32]);
    mb.define_subgraph(&w, |b| {
        let x = b.input(0)?;
        let n = b.input(1)?;
        let zero = b.const_i32(0);
        let one = b.const_i32(1);
        let p = b.igt(n, zero)?;
        // Softmax on the recursive path: it can never participate in
        // cross-request fusion, so the whole hot loop serializes on it.
        let s = b.softmax(x)?;
        let out = b.cond1(
            p,
            DType::F32,
            |b| {
                let m = b.isub(n, one)?;
                Ok(b.invoke(&w, &[s, m])?[0])
            },
            |b| b.identity(s),
        )?;
        Ok(vec![out])
    })
    .unwrap();
    let x0 = mb.constant(Tensor::from_f32(vec![2, 3], vec![0.1; 6]).unwrap());
    let n0 = mb.const_i32(3);
    let out = mb.invoke(&w, &[x0, n0]).unwrap()[0];
    mb.set_outputs(&[out]).unwrap();
    let m = mb.finish().unwrap();
    assert_code(&m, codes::FUSION_INELIGIBLE);
}

// -- policy surface ------------------------------------------------------------

#[test]
fn allow_all_escape_hatch_builds_bad_modules() {
    let mut mb = ModuleBuilder::new();
    mb.set_analysis(AnalysisConfig::allow_all());
    let a = mb.constant(Tensor::from_f32(vec![2, 2], vec![0.0; 4]).unwrap());
    let b = mb.constant(Tensor::from_f32(vec![3], vec![0.0; 3]).unwrap());
    let c = mb.add(a, b).unwrap();
    mb.set_outputs(&[c]).unwrap();
    // The analyzer is bypassed but the structural validator still runs.
    let m = mb.finish().expect("allow_all must bypass analysis");
    assert_code(&m, codes::SHAPE_MISMATCH);
}

#[test]
fn deny_all_promotes_warnings() {
    let mut mb = ModuleBuilder::new();
    mb.set_analysis(AnalysisConfig::deny_all());
    let a = mb.const_f32(1.0);
    let used = mb.tanh(a).unwrap();
    let _unused = mb.neg(a).unwrap();
    mb.set_outputs(&[used]).unwrap();
    assert_denied(mb, codes::DEAD_NODE);
}
