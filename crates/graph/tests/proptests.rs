//! Property-based tests over graph construction and validation.

use proptest::prelude::*;
use rdg_graph::{ModuleBuilder, OpKind};
use rdg_tensor::DType;

proptest! {
    /// Random arithmetic chains always produce valid, topologically
    /// orderable modules whose node count matches what we pushed.
    #[test]
    fn random_chains_validate(ops in prop::collection::vec(0u8..4, 1..40)) {
        let mut mb = ModuleBuilder::new();
        let mut x = mb.const_f32(1.0);
        let y = mb.const_f32(0.5);
        for op in &ops {
            x = match op {
                0 => mb.add(x, y).unwrap(),
                1 => mb.mul(x, y).unwrap(),
                2 => mb.tanh(x).unwrap(),
                _ => mb.neg(x).unwrap(),
            };
        }
        mb.set_outputs(&[x]).unwrap();
        let m = mb.finish().unwrap();
        prop_assert!(m.validate().is_ok());
        prop_assert_eq!(m.main.len(), ops.len() + 2);
        let order = m.main.topo_order("main").unwrap();
        prop_assert_eq!(order.len(), m.main.len());
    }

    /// Recursion depth parameterized: countdown subgraphs of any declared
    /// depth must validate, and captures stay deduplicated.
    #[test]
    fn recursive_countdown_modules_validate(extra_uses in 1usize..6) {
        let mut mb = ModuleBuilder::new();
        let step = mb.const_i32(1);
        let h = mb.declare_subgraph("cd", &[DType::I32], &[DType::I32]);
        mb.define_subgraph(&h, |b| {
            let n = b.input(0)?;
            let zero = b.const_i32(0);
            let p = b.igt(n, zero)?;
            let out = b.cond1(p, DType::I32,
                |b| {
                    // Use the captured `step` several times: the capture
                    // list must still contain it once.
                    let mut m = n;
                    for _ in 0..extra_uses {
                        m = b.isub(m, step)?;
                    }
                    Ok(b.invoke(&h, &[m])?[0])
                },
                |b| b.identity(n))?;
            Ok(vec![out])
        }).unwrap();
        let s = mb.const_i32(9);
        let out = mb.invoke(&h, &[s]).unwrap();
        mb.set_outputs(&[out[0]]).unwrap();
        let m = mb.finish().unwrap();
        prop_assert!(m.validate().is_ok());
        let cd = m.subgraphs.iter().find(|s| s.name == "cd").unwrap();
        prop_assert_eq!(cd.explicit_inputs, 1);
        prop_assert!(cd.n_captures() <= 1, "step captured at most once");
    }

    /// Consumers/pending/fetch counts are mutually consistent on random
    /// fan-out graphs.
    #[test]
    fn plan_count_invariants(fanout in prop::collection::vec(0usize..5, 2..30)) {
        let mut mb = ModuleBuilder::new();
        let mut nodes = vec![mb.const_f32(1.0)];
        for (i, &f) in fanout.iter().enumerate() {
            let src = nodes[(i * 7 + f) % nodes.len()];
            let n = mb.tanh(src).unwrap();
            nodes.push(n);
        }
        let last = *nodes.last().unwrap();
        mb.set_outputs(&[last]).unwrap();
        let m = mb.finish().unwrap();
        let g = &m.main;
        let consumers = g.consumers();
        let pending = g.pending_counts();
        // Sum of pending counts equals the number of (consumer, distinct
        // producer) pairs, which equals the total consumer-list length.
        let total_pending: u32 = pending.iter().sum();
        let total_consumers: usize = consumers.iter().map(Vec::len).sum();
        prop_assert_eq!(total_pending as usize, total_consumers);
    }
}

#[test]
fn dot_export_of_every_op_class() {
    // Smoke: DOT rendering covers arithmetic, control flow, and params.
    let mut mb = ModuleBuilder::new();
    let w = mb
        .param_wire("w", rdg_tensor::Tensor::scalar_f32(1.0))
        .unwrap();
    let f = mb
        .subgraph("body", &[DType::F32], &[DType::F32], |b| {
            let x = b.input(0)?;
            Ok(vec![b.mul(x, w)?])
        })
        .unwrap();
    let c = mb.const_f32(2.0);
    let p = mb.const_i32(1);
    let picked = mb
        .cond1(
            p,
            DType::F32,
            |b| Ok(b.invoke(&f, &[c])?[0]),
            |b| Ok(b.const_f32(0.0)),
        )
        .unwrap();
    mb.set_outputs(&[picked]).unwrap();
    let m = mb.finish().unwrap();
    let dot = rdg_graph::dot::module_to_dot(&m);
    for needle in ["Cond", "Invoke", "Param", "cluster_m", "digraph"] {
        assert!(dot.contains(needle), "missing {needle}");
    }
    // OpKind display coverage for grad ops too.
    assert_eq!(OpKind::TanhGrad.mnemonic(), "TanhGrad");
}
