//! Model family and hyperparameters.

/// Which recursive sentiment model to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// `h = tanh(W[h_l; h_r] + b)` — lightest per-node compute.
    TreeRnn,
    /// TreeRNN plus the bilinear tensor term — an order of magnitude more
    /// work per node.
    Rntn,
    /// Binary TreeLSTM with per-child forget gates — heaviest per node.
    TreeLstm,
}

impl ModelKind {
    /// Short lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::TreeRnn => "treernn",
            ModelKind::Rntn => "rntn",
            ModelKind::TreeLstm => "treelstm",
        }
    }
}

/// Hyperparameters shared by all implementations of a model.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Model family.
    pub kind: ModelKind,
    /// Vocabulary size.
    pub vocab: usize,
    /// Word-embedding width.
    pub embed: usize,
    /// Hidden-state width.
    pub hidden: usize,
    /// Output classes (2 for binary sentiment).
    pub classes: usize,
    /// Instances per step (the module is built for a fixed batch).
    pub batch: usize,
    /// Parameter-initialization seed.
    pub seed: u64,
}

impl ModelConfig {
    /// Paper-flavoured defaults: per-node compute ordered
    /// TreeRNN < RNTN < TreeLSTM, as in the original papers' dimensions.
    pub fn paper_default(kind: ModelKind, batch: usize) -> Self {
        let (embed, hidden) = match kind {
            ModelKind::TreeRnn => (32, 32),
            ModelKind::Rntn => (32, 32),
            ModelKind::TreeLstm => (64, 168),
        };
        ModelConfig {
            kind,
            vocab: 2000,
            embed,
            hidden,
            classes: 2,
            batch,
            seed: 20180423,
        }
    }

    /// Small dimensions for fast tests.
    pub fn tiny(kind: ModelKind, batch: usize) -> Self {
        ModelConfig {
            kind,
            vocab: 100,
            embed: 6,
            hidden: 5,
            classes: 2,
            batch,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_order_compute_weight() {
        let rnn = ModelConfig::paper_default(ModelKind::TreeRnn, 1);
        let lstm = ModelConfig::paper_default(ModelKind::TreeLstm, 1);
        assert!(lstm.hidden > rnn.hidden);
        assert_eq!(rnn.classes, 2);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ModelKind::TreeRnn.name(), "treernn");
        assert_eq!(ModelKind::Rntn.name(), "rntn");
        assert_eq!(ModelKind::TreeLstm.name(), "treelstm");
    }
}
