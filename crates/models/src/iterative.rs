//! The iterative baseline (paper Figure 1: TensorFlow `while_loop` style).
//!
//! Nodes are processed one by one in topological index order; a `[n, d]`
//! state matrix carries every node's hidden state, updated by functional row
//! writes. The topological preprocessing has erased parent-child structure,
//! so execution is *strictly sequential per instance* — the defining
//! performance property of this baseline (§2.2: "the iterative execution is
//! inherently sequential and thus is incapable of computing multiple nodes
//! in parallel"). Different batch instances still run concurrently.
//!
//! `while_loop` is sugar over tail recursion (see
//! `rdg_graph::ModuleBuilder::while_loop`), so this baseline exercises the
//! same executor machinery — only the dependency structure differs.

use crate::config::ModelConfig;
use crate::params::{Cell, ModelParams};
use rdg_graph::{Module, ModuleBuilder, Result, Wire};
use rdg_tensor::DType;

/// Builds the iterative module for `cfg` (same conventions as recursive).
pub fn build_iterative(cfg: &ModelConfig) -> Result<Module> {
    let mut mb = ModuleBuilder::new();
    let params = ModelParams::register(&mut mb, cfg);

    let mut instances = Vec::with_capacity(cfg.batch);
    for _ in 0..cfg.batch {
        let words = mb.main_input(DType::I32);
        let left = mb.main_input(DType::I32);
        let right = mb.main_input(DType::I32);
        let is_leaf = mb.main_input(DType::I32);
        let root = mb.main_input(DType::I32);
        instances.push((words, left, right, is_leaf, root));
    }
    let labels = mb.main_input(DType::I32);

    let mut logit_rows = Vec::with_capacity(cfg.batch);
    for (b, &(words, left, right, is_leaf, root)) in instances.iter().enumerate() {
        let n = mb.len_of(words)?;
        let i0 = mb.const_i32(0);
        let h0 = mb.zeros_dyn(n, cfg.hidden)?;
        let cell = params.cell;
        let embedding = params.embedding;

        // Loop state: (i, h_state[, c_state]).
        let mut init: Vec<Wire> = vec![i0, h0];
        if matches!(cell, Cell::Lstm(_)) {
            init.push(mb.zeros_dyn(n, cfg.hidden)?);
        }
        let outs = mb.while_loop(
            &format!("iter_{b}"),
            &init,
            |b, s| b.ilt(s[0], n),
            move |b, s| {
                let i = s[0];
                let h_state = s[1];
                let leaf_flag = b.gather_scalar_i32(is_leaf, i)?;
                let one = b.const_i32(1);
                let i2 = b.iadd(i, one)?;
                match cell {
                    Cell::Rnn(_) | Cell::Rntn(_) => {
                        let h_row = b.cond1(
                            leaf_flag,
                            DType::F32,
                            |b| {
                                let w = b.gather_scalar_i32(words, i)?;
                                let e = embedding.lookup(b, w)?;
                                match &cell {
                                    Cell::Rnn(c) => c.leaf(b, e),
                                    Cell::Rntn(c) => c.leaf(b, e),
                                    Cell::Lstm(_) => unreachable!("matched above"),
                                }
                            },
                            |b| {
                                let li = b.gather_scalar_i32(left, i)?;
                                let ri = b.gather_scalar_i32(right, i)?;
                                let hl = b.get_row(h_state, li)?;
                                let hr = b.get_row(h_state, ri)?;
                                match &cell {
                                    Cell::Rnn(c) => c.internal(b, hl, hr),
                                    Cell::Rntn(c) => c.internal(b, hl, hr),
                                    Cell::Lstm(_) => unreachable!("matched above"),
                                }
                            },
                        )?;
                        let h2 = b.set_row(h_state, i, h_row)?;
                        Ok(vec![i2, h2])
                    }
                    Cell::Lstm(c) => {
                        let c_state = s[2];
                        let rows = b.cond(
                            leaf_flag,
                            &[DType::F32, DType::F32],
                            |b| {
                                let w = b.gather_scalar_i32(words, i)?;
                                let e = embedding.lookup(b, w)?;
                                let (hh, cc) = c.leaf(b, e)?;
                                Ok(vec![hh, cc])
                            },
                            |b| {
                                let li = b.gather_scalar_i32(left, i)?;
                                let ri = b.gather_scalar_i32(right, i)?;
                                let hl = b.get_row(h_state, li)?;
                                let cl = b.get_row(c_state, li)?;
                                let hr = b.get_row(h_state, ri)?;
                                let cr = b.get_row(c_state, ri)?;
                                let (hh, cc) = c.internal(b, hl, cl, hr, cr)?;
                                Ok(vec![hh, cc])
                            },
                        )?;
                        let h2 = b.set_row(h_state, i, rows[0])?;
                        let c2 = b.set_row(c_state, i, rows[1])?;
                        Ok(vec![i2, h2, c2])
                    }
                }
            },
        )?;
        let h_root = mb.get_row(outs[1], root)?;
        let logits = params.classifier.apply(&mut mb, h_root)?;
        logit_rows.push(logits);
    }

    let logits = mb.stack_rows(&logit_rows)?;
    let losses = mb.softmax_xent(logits, labels)?;
    let loss = mb.mean_all(losses)?;
    mb.set_outputs(&[loss, logits])?;
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind};
    use rdg_data::{Dataset, DatasetConfig, Split};
    use rdg_exec::{Executor, Session};

    fn tiny_feeds(batch: usize) -> Vec<rdg_tensor::Tensor> {
        let cfg = DatasetConfig {
            vocab: 100,
            n_train: batch,
            n_valid: 0,
            min_len: 3,
            max_len: 8,
            ..DatasetConfig::default()
        };
        let d = Dataset::generate(cfg);
        Dataset::feeds_for(d.split(Split::Train))
    }

    #[test]
    fn all_kinds_build_and_run() {
        for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
            let cfg = ModelConfig::tiny(kind, 2);
            let m = build_iterative(&cfg).unwrap();
            m.validate().unwrap();
            let s = Session::new(Executor::with_threads(2), m).unwrap();
            let out = s.run(tiny_feeds(2)).unwrap();
            assert!(out[0].as_f32_scalar().unwrap().is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn training_module_builds_and_runs() {
        let cfg = ModelConfig::tiny(ModelKind::TreeRnn, 1);
        let m = build_iterative(&cfg).unwrap();
        let t = rdg_autodiff::build_training_module(&m, m.main.outputs[0]).unwrap();
        let s = Session::new(Executor::with_threads(2), t).unwrap();
        s.run_training(tiny_feeds(1)).unwrap();
        let any = (0..s.module().params.len())
            .any(|i| s.grads().get(rdg_graph::ParamId(i as u32)).is_some());
        assert!(any, "iterative training produced gradients");
    }
}
