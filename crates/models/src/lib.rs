//! The paper's evaluation models, in all competing implementations.
//!
//! Three sentiment models (paper §6.1) over binary parse trees:
//! **TreeRNN** (Socher '11), **RNTN** (Socher '13), **TreeLSTM** (Tai '15) —
//! plus the dynamically-structured **TD-TreeLSTM** (Zhang '16, §6.4.2).
//!
//! Each sentiment model is built in three ways that share *identical*
//! parameters (same registration order, same seeded initialization), which
//! is what lets the equivalence tests assert the paper's §6.2 claim that the
//! implementations compute numerically identical results:
//!
//! * [`recursive`] — the paper's contribution: one recursive `SubGraph` per
//!   instance (capturing that instance's tree tensors as outer references),
//!   with the base/recursive cases split by a lazy `Cond` (paper Figure 2).
//! * [`iterative`] — the TensorFlow-baseline encoding (paper Figure 1): a
//!   `while_loop` over topologically indexed nodes threading a `[n, d]`
//!   state matrix through functional row updates. Strictly sequential per
//!   instance.
//! * [`unrolled`] — the PyTorch-baseline encoding: a fresh, fully unrolled
//!   graph is constructed *per data instance* at run time and executed
//!   sequentially (eager dispatch), then thrown away — paying graph
//!   construction on every instance and enjoying no cross-instance reuse.
//!
//! The module convention shared by all builders:
//!
//! * main-graph inputs: per instance `(words, left, right, is_leaf, root)`
//!   (see `rdg_data::TreeTensors::feeds`), then one `i32[batch]` label
//!   tensor;
//! * main-graph outputs: `[scalar mean loss, logits [batch, classes]]`.

pub mod config;
pub mod iterative;
pub mod params;
pub mod recursive;
pub mod td;
pub mod unrolled;

pub use config::{ModelConfig, ModelKind};
pub use iterative::build_iterative;
pub use recursive::build_recursive;
pub use td::{build_td_iterative, build_td_recursive, TdConfig};
pub use unrolled::UnrolledModel;
