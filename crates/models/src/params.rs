//! Shared parameter registration.
//!
//! Every implementation of a model calls [`ModelParams::register`] with the
//! same config, producing the *same parameter list in the same order with
//! the same seeded initialization*. Sessions built from different
//! implementations can therefore share one `ParamStore`, which is how the
//! equivalence tests pin all implementations to identical weights.

use crate::config::{ModelConfig, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdg_graph::ModuleBuilder;
use rdg_nn::{Embedding, Linear, RntnCell, TreeLstmCell, TreeRnnCell};

/// The cell variant registered for a model.
#[derive(Clone, Copy)]
pub enum Cell {
    /// TreeRNN cell.
    Rnn(TreeRnnCell),
    /// RNTN cell.
    Rntn(RntnCell),
    /// TreeLSTM cell.
    Lstm(TreeLstmCell),
}

/// All parameters of one sentiment model.
pub struct ModelParams {
    /// Word embeddings.
    pub embedding: Embedding,
    /// The recursive cell.
    pub cell: Cell,
    /// Root classifier (hidden → classes).
    pub classifier: Linear,
}

impl ModelParams {
    /// Registers embeddings, cell, and classifier deterministically.
    pub fn register(mb: &mut ModuleBuilder, cfg: &ModelConfig) -> ModelParams {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let embedding = Embedding::new(mb, "embedding", cfg.vocab, cfg.embed, &mut rng);
        let cell = match cfg.kind {
            ModelKind::TreeRnn => Cell::Rnn(TreeRnnCell::new(mb, cfg.embed, cfg.hidden, &mut rng)),
            ModelKind::Rntn => Cell::Rntn(RntnCell::new(mb, cfg.embed, cfg.hidden, &mut rng)),
            ModelKind::TreeLstm => {
                Cell::Lstm(TreeLstmCell::new(mb, cfg.embed, cfg.hidden, &mut rng))
            }
        };
        let classifier = Linear::new(mb, "classifier", cfg.hidden, cfg.classes, &mut rng);
        ModelParams {
            embedding,
            cell,
            classifier,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_deterministic_across_builders() {
        let cfg = ModelConfig::tiny(ModelKind::TreeLstm, 1);
        let mut mb1 = ModuleBuilder::new();
        let _p1 = ModelParams::register(&mut mb1, &cfg);
        let c1 = mb1.const_f32(0.0);
        mb1.set_outputs(&[c1]).unwrap();
        let m1 = mb1.finish().unwrap();

        let mut mb2 = ModuleBuilder::new();
        let _p2 = ModelParams::register(&mut mb2, &cfg);
        let c2 = mb2.const_f32(0.0);
        mb2.set_outputs(&[c2]).unwrap();
        let m2 = mb2.finish().unwrap();

        assert_eq!(m1.params.len(), m2.params.len());
        for (a, b) in m1.params.iter().zip(m2.params.iter()) {
            assert_eq!(a.name, b.name);
            assert!(a.init.allclose(&b.init, 0.0), "param {} differs", a.name);
        }
    }

    #[test]
    fn all_kinds_register() {
        for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
            let cfg = ModelConfig::tiny(kind, 1);
            let mut mb = ModuleBuilder::new();
            let p = ModelParams::register(&mut mb, &cfg);
            match (&p.cell, kind) {
                (Cell::Rnn(_), ModelKind::TreeRnn)
                | (Cell::Rntn(_), ModelKind::Rntn)
                | (Cell::Lstm(_), ModelKind::TreeLstm) => {}
                _ => panic!("cell kind mismatch"),
            }
        }
    }
}
