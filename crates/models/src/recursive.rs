//! The recursive implementation (the paper's contribution, Figure 2).
//!
//! One recursive `SubGraph` per batch instance:
//!
//! ```text
//! node(idx) = if is_leaf[idx] { cell.leaf(embed(words[idx])) }
//!             else            { cell.internal(node(left[idx]), node(right[idx])) }
//! ```
//!
//! The instance's tree tensors (`words`, `left`, `right`, `is_leaf`) are
//! *outer references*: the body reads them freely and the builder captures
//! them as SubGraph inputs automatically (§5 of the paper). Sibling
//! recursive calls carry no dependency on each other, so the executor runs
//! entire subtrees concurrently — that is where every speedup in §6 comes
//! from.

use crate::config::ModelConfig;
use crate::params::{Cell, ModelParams};
use rdg_graph::{Module, ModuleBuilder, Result};
use rdg_tensor::DType;

/// Builds the recursive module for `cfg` (see crate docs for conventions).
pub fn build_recursive(cfg: &ModelConfig) -> Result<Module> {
    let mut mb = ModuleBuilder::new();
    let params = ModelParams::register(&mut mb, cfg);

    // Main-graph inputs, in `Dataset::feeds_for` order.
    let mut instances = Vec::with_capacity(cfg.batch);
    for _ in 0..cfg.batch {
        let words = mb.main_input(DType::I32);
        let left = mb.main_input(DType::I32);
        let right = mb.main_input(DType::I32);
        let is_leaf = mb.main_input(DType::I32);
        let root = mb.main_input(DType::I32);
        instances.push((words, left, right, is_leaf, root));
    }
    let labels = mb.main_input(DType::I32);

    let mut logit_rows = Vec::with_capacity(cfg.batch);
    for (b, &(words, left, right, is_leaf, root)) in instances.iter().enumerate() {
        // State arity: TreeLSTM carries (h, c); the others just h.
        let n_state = match params.cell {
            Cell::Lstm(_) => 2,
            _ => 1,
        };
        let state_dtypes = vec![DType::F32; n_state];
        let h = mb.declare_subgraph(format!("node_{b}"), &[DType::I32], &state_dtypes);
        let h2 = h.clone();
        let cell = params.cell;
        let embedding = params.embedding;
        mb.define_subgraph(&h, move |b| {
            let idx = b.input(0)?;
            let leaf_flag = b.gather_scalar_i32(is_leaf, idx)?;
            b.cond(
                leaf_flag,
                &state_dtypes,
                |b| {
                    let word = b.gather_scalar_i32(words, idx)?;
                    let e = embedding.lookup(b, word)?;
                    match &cell {
                        Cell::Rnn(c) => Ok(vec![c.leaf(b, e)?]),
                        Cell::Rntn(c) => Ok(vec![c.leaf(b, e)?]),
                        Cell::Lstm(c) => {
                            let (hh, cc) = c.leaf(b, e)?;
                            Ok(vec![hh, cc])
                        }
                    }
                },
                |b| {
                    let li = b.gather_scalar_i32(left, idx)?;
                    let ri = b.gather_scalar_i32(right, idx)?;
                    let ls = b.invoke(&h2, &[li])?;
                    let rs = b.invoke(&h2, &[ri])?;
                    match &cell {
                        Cell::Rnn(c) => Ok(vec![c.internal(b, ls[0], rs[0])?]),
                        Cell::Rntn(c) => Ok(vec![c.internal(b, ls[0], rs[0])?]),
                        Cell::Lstm(c) => {
                            let (hh, cc) = c.internal(b, ls[0], ls[1], rs[0], rs[1])?;
                            Ok(vec![hh, cc])
                        }
                    }
                },
            )
        })?;
        let root_state = mb.invoke(&h, &[root])?;
        let logits = params.classifier.apply(&mut mb, root_state[0])?;
        logit_rows.push(logits);
    }

    let logits = mb.stack_rows(&logit_rows)?;
    let losses = mb.softmax_xent(logits, labels)?;
    let loss = mb.mean_all(losses)?;
    mb.set_outputs(&[loss, logits])?;
    mb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind};
    use rdg_data::{Dataset, DatasetConfig, Split};
    use rdg_exec::{Executor, Session};

    fn tiny_data(batch: usize) -> (Vec<rdg_tensor::Tensor>, Dataset) {
        let cfg = DatasetConfig {
            vocab: 100,
            n_train: batch,
            n_valid: 0,
            min_len: 3,
            max_len: 8,
            ..DatasetConfig::default()
        };
        let d = Dataset::generate(cfg);
        let feeds = Dataset::feeds_for(d.split(Split::Train));
        (feeds, d)
    }

    #[test]
    fn all_kinds_build_and_run() {
        for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
            let cfg = ModelConfig::tiny(kind, 2);
            let m = build_recursive(&cfg).unwrap();
            m.validate().unwrap();
            let (feeds, _) = tiny_data(2);
            let s = Session::new(Executor::with_threads(2), m).unwrap();
            let out = s.run(feeds).unwrap();
            let loss = out[0].as_f32_scalar().unwrap();
            assert!(loss.is_finite() && loss > 0.0, "{kind:?} loss = {loss}");
            assert_eq!(out[1].shape().dims(), &[2, 2], "logits shape");
        }
    }

    #[test]
    fn tree_tensors_are_captured_as_subgraph_inputs() {
        let cfg = ModelConfig::tiny(ModelKind::TreeRnn, 1);
        let m = build_recursive(&cfg).unwrap();
        let node_sg = m.subgraphs.iter().find(|s| s.name == "node_0").unwrap();
        assert_eq!(node_sg.explicit_inputs, 1, "only idx is explicit");
        assert!(
            node_sg.n_captures() >= 3,
            "tree tensors captured: {}",
            node_sg.n_captures()
        );
    }

    #[test]
    fn training_module_builds() {
        let cfg = ModelConfig::tiny(ModelKind::TreeLstm, 1);
        let m = build_recursive(&cfg).unwrap();
        let t = rdg_autodiff::build_training_module(&m, m.main.outputs[0]).unwrap();
        let (feeds, _) = tiny_data(1);
        let s = Session::new(Executor::with_threads(2), t).unwrap();
        s.run_training(feeds).unwrap();
        // Some parameter must have received a gradient.
        let any = (0..s.module().params.len())
            .any(|i| s.grads().get(rdg_graph::ParamId(i as u32)).is_some());
        assert!(any, "training run produced gradients");
    }
}
