//! TD-TreeLSTM: the dynamically-structured model of paper §6.4.2 (Table 3).
//!
//! Top-down generation (Zhang et al., 2016): starting from a root state
//! derived from a seed word, each node *decides at run time* — from its own
//! computed hidden state — whether to generate two children. The complete
//! tree structure is therefore unknown before execution, which is exactly
//! what defeats ahead-of-time batching approaches like TensorFlow Fold
//! ("it is impossible to express such models using the API provided by the
//! Fold framework").
//!
//! Two implementations with identical parameters and identical expansion
//! decisions:
//!
//! * [`build_td_recursive`] — a self-invoking `Gen` SubGraph whose
//!   conditional expansion predicate is a *computed value* (`σ(w·h) > θ`);
//!   sibling expansions run in parallel.
//! * [`build_td_iterative`] — a `while_loop` over an explicit frontier
//!   queue held in pre-allocated state matrices; one node per iteration,
//!   strictly sequential.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rdg_graph::{Module, ModuleBuilder, Result, Wire};
use rdg_nn::{Embedding, Linear};
use rdg_tensor::DType;

/// Hyperparameters of the TD-TreeLSTM benchmark model.
#[derive(Clone, Debug)]
pub struct TdConfig {
    /// Vocabulary size for seed words.
    pub vocab: usize,
    /// Embedding width.
    pub embed: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Maximum generation depth (root = 0).
    pub max_depth: usize,
    /// Expansion threshold θ for `σ(w·h) > θ`.
    pub threshold: f32,
    /// Instances per run.
    pub batch: usize,
    /// Parameter seed.
    pub seed: u64,
}

impl TdConfig {
    /// Small, fast defaults.
    pub fn tiny(batch: usize) -> Self {
        TdConfig {
            vocab: 100,
            embed: 6,
            hidden: 5,
            max_depth: 5,
            threshold: 0.5,
            batch,
            seed: 11,
        }
    }

    /// Paper-flavoured defaults (hidden size comparable to TreeLSTM).
    pub fn paper_default(batch: usize) -> Self {
        TdConfig {
            vocab: 2000,
            embed: 64,
            hidden: 128,
            max_depth: 7,
            threshold: 0.5,
            batch,
            seed: 20180424,
        }
    }

    /// Upper bound on generated nodes per instance (full binary tree).
    pub fn max_nodes(&self) -> usize {
        (1usize << (self.max_depth + 2)) - 1
    }
}

/// Per-side LSTM-style child generator parameters.
#[derive(Clone, Copy)]
struct TdChild {
    i: Linear,
    o: Linear,
    u: Linear,
    f: Linear,
}

impl TdChild {
    fn new(mb: &mut ModuleBuilder, name: &str, hidden: usize, rng: &mut impl rand::Rng) -> Self {
        TdChild {
            i: Linear::new(mb, &format!("{name}_i"), hidden, hidden, rng),
            o: Linear::new(mb, &format!("{name}_o"), hidden, hidden, rng),
            u: Linear::new(mb, &format!("{name}_u"), hidden, hidden, rng),
            f: Linear::new(mb, &format!("{name}_f"), hidden, hidden, rng),
        }
    }

    /// `(h', c')` for one generated child from the parent `(h, c)`.
    fn apply(&self, mb: &mut ModuleBuilder, h: Wire, c: Wire) -> Result<(Wire, Wire)> {
        let i = self.i.apply(mb, h)?;
        let i = mb.sigmoid(i)?;
        let o = self.o.apply(mb, h)?;
        let o = mb.sigmoid(o)?;
        let u = self.u.apply(mb, h)?;
        let u = mb.tanh(u)?;
        let f = self.f.apply(mb, h)?;
        let f = mb.sigmoid(f)?;
        let iu = mb.mul(i, u)?;
        let fc = mb.mul(f, c)?;
        let c2 = mb.add(iu, fc)?;
        let ct = mb.tanh(c2)?;
        let h2 = mb.mul(o, ct)?;
        Ok((h2, c2))
    }
}

#[derive(Clone, Copy)]
struct TdParams {
    embedding: Embedding,
    init: Linear,
    stop: Linear,
    left: TdChild,
    right: TdChild,
}

impl TdParams {
    fn register(mb: &mut ModuleBuilder, cfg: &TdConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        TdParams {
            embedding: Embedding::new(mb, "td_embedding", cfg.vocab, cfg.embed, &mut rng),
            init: Linear::new(mb, "td_init", cfg.embed, cfg.hidden, &mut rng),
            stop: Linear::new(mb, "td_stop", cfg.hidden, 1, &mut rng),
            left: TdChild::new(mb, "td_left", cfg.hidden, &mut rng),
            right: TdChild::new(mb, "td_right", cfg.hidden, &mut rng),
        }
    }

    /// Root state from a seed-word wire.
    ///
    /// The embedding is amplified so untrained root states differ enough
    /// across seed words for the expansion gate to take both sides — the
    /// benchmark needs genuinely input-dependent structure.
    fn root_state(&self, mb: &mut ModuleBuilder, seed: Wire) -> Result<(Wire, Wire)> {
        let e = self.embedding.lookup(mb, seed)?;
        let e = mb.scale(e, 20.0)?;
        let h0 = self.init.apply(mb, e)?;
        let h0 = mb.tanh(h0)?;
        let c0 = mb.zeros_like(h0)?;
        Ok((h0, c0))
    }

    /// The runtime expansion predicate `σ(w·h) > θ`.
    fn expand_pred(&self, mb: &mut ModuleBuilder, h: Wire, threshold: f32) -> Result<Wire> {
        let s = self.stop.apply(mb, h)?;
        let s = mb.sigmoid(s)?;
        let s = mb.sum_all(s)?;
        mb.fgt_const(s, threshold)
    }
}

/// Builds the recursive TD-TreeLSTM module.
///
/// Main inputs: one `i32` seed word per instance. Outputs:
/// `[total generated nodes (i32), mean of root-subtree state sums (f32)]`.
pub fn build_td_recursive(cfg: &TdConfig) -> Result<Module> {
    let mut mb = ModuleBuilder::new();
    let params = TdParams::register(&mut mb, cfg);
    let seeds: Vec<Wire> = (0..cfg.batch).map(|_| mb.main_input(DType::I32)).collect();

    let mut counts = Vec::with_capacity(cfg.batch);
    let mut sums = Vec::with_capacity(cfg.batch);
    for (b, &seed) in seeds.iter().enumerate() {
        let gen = mb.declare_subgraph(
            format!("td_gen_{b}"),
            &[DType::F32, DType::F32, DType::I32],
            &[DType::I32, DType::F32],
        );
        let gen2 = gen.clone();
        let threshold = cfg.threshold;
        let max_depth = cfg.max_depth as i32;
        mb.define_subgraph(&gen, move |b| {
            let h = b.input(0)?;
            let c = b.input(1)?;
            let depth = b.input(2)?;
            let expand = params.expand_pred(b, h, threshold)?;
            let maxd = b.const_i32(max_depth);
            let depth_ok = b.ilt(depth, maxd)?;
            let p = b.and(expand, depth_ok)?;
            b.cond(
                p,
                &[DType::I32, DType::F32],
                |b| {
                    let (hl, cl) = params.left.apply(b, h, c)?;
                    let (hr, cr) = params.right.apply(b, h, c)?;
                    let one = b.const_i32(1);
                    let d2 = b.iadd(depth, one)?;
                    let l = b.invoke(&gen2, &[hl, cl, d2])?;
                    let r = b.invoke(&gen2, &[hr, cr, d2])?;
                    let n0 = b.iadd(l[0], r[0])?;
                    let n = b.iadd(n0, one)?;
                    let s0 = b.add(l[1], r[1])?;
                    let s = b.add(s0, h)?;
                    Ok(vec![n, s])
                },
                |b| {
                    let one = b.const_i32(1);
                    let n = b.identity(one)?;
                    let s = b.identity(h)?;
                    Ok(vec![n, s])
                },
            )
        })?;
        let (h0, c0) = params.root_state(&mut mb, seed)?;
        let zero = mb.const_i32(0);
        let out = mb.invoke(&gen, &[h0, c0, zero])?;
        counts.push(out[0]);
        sums.push(out[1]);
    }
    let total = counts
        .into_iter()
        .try_fold(None::<Wire>, |acc, c| -> Result<Option<Wire>> {
            Ok(Some(match acc {
                None => c,
                Some(a) => mb.iadd(a, c)?,
            }))
        })?
        .expect("batch >= 1");
    let sum_state = sums
        .into_iter()
        .try_fold(None::<Wire>, |acc, s| -> Result<Option<Wire>> {
            Ok(Some(match acc {
                None => s,
                Some(a) => mb.add(a, s)?,
            }))
        })?
        .expect("batch >= 1");
    let mean_state = mb.mean_all(sum_state)?;
    mb.set_outputs(&[total, mean_state])?;
    mb.finish()
}

/// Builds the iterative TD-TreeLSTM module (frontier queue in state
/// matrices; one generated node per loop iteration).
pub fn build_td_iterative(cfg: &TdConfig) -> Result<Module> {
    let mut mb = ModuleBuilder::new();
    let params = TdParams::register(&mut mb, cfg);
    let seeds: Vec<Wire> = (0..cfg.batch).map(|_| mb.main_input(DType::I32)).collect();
    let cap = cfg.max_nodes();

    let mut counts = Vec::with_capacity(cfg.batch);
    let mut sums = Vec::with_capacity(cfg.batch);
    for (b, &seed) in seeds.iter().enumerate() {
        let (h0, c0) = params.root_state(&mut mb, seed)?;
        let cap_w = mb.const_i32(cap as i32);
        let qh = mb.zeros_dyn(cap_w, cfg.hidden)?;
        let qc = mb.zeros_dyn(cap_w, cfg.hidden)?;
        let qd = mb.zeros_dyn(cap_w, 1)?; // per-node depth, as f32 rows
        let zero = mb.const_i32(0);
        let qh = mb.set_row(qh, zero, h0)?;
        let qc = mb.set_row(qc, zero, c0)?;
        let one_i = mb.const_i32(1);
        let hsum0 = mb.zeros_like(h0)?;
        let threshold = cfg.threshold;
        let max_depth = cfg.max_depth;
        // Loop state: (head, tail, qh, qc, qd, hsum).
        let outs = mb.while_loop(
            &format!("td_iter_{b}"),
            &[zero, one_i, qh, qc, qd, hsum0],
            |b, s| b.ilt(s[0], s[1]),
            move |b, s| {
                let (head, tail, qh, qc, qd, hsum) = (s[0], s[1], s[2], s[3], s[4], s[5]);
                let h = b.get_row(qh, head)?;
                let c = b.get_row(qc, head)?;
                let dep = b.get_row(qd, head)?;
                let expand = params.expand_pred(b, h, threshold)?;
                let dep_s = b.sum_all(dep)?;
                let too_deep = b.fgt_const(dep_s, max_depth as f32 - 0.5)?;
                let depth_ok = b.not(too_deep)?;
                let two = b.const_i32(2);
                let t2 = b.iadd(tail, two)?;
                let cap_w = b.const_i32((1usize << (max_depth + 2)) as i32 - 1);
                let room = b.ile(t2, cap_w)?;
                let p0 = b.and(expand, depth_ok)?;
                let p = b.and(p0, room)?;
                let state = b.cond(
                    p,
                    &[DType::F32, DType::F32, DType::F32, DType::I32],
                    |b| {
                        let (hl, cl) = params.left.apply(b, h, c)?;
                        let (hr, cr) = params.right.apply(b, h, c)?;
                        let one = b.const_i32(1);
                        let t1 = b.iadd(tail, one)?;
                        let qh2 = b.set_row(qh, tail, hl)?;
                        let qh3 = b.set_row(qh2, t1, hr)?;
                        let qc2 = b.set_row(qc, tail, cl)?;
                        let qc3 = b.set_row(qc2, t1, cr)?;
                        let d2 = b.add_const(dep, 1.0)?;
                        let qd2 = b.set_row(qd, tail, d2)?;
                        let qd3 = b.set_row(qd2, t1, d2)?;
                        let two = b.const_i32(2);
                        let tnew = b.iadd(tail, two)?;
                        Ok(vec![qh3, qc3, qd3, tnew])
                    },
                    |b| {
                        Ok(vec![
                            b.identity(qh)?,
                            b.identity(qc)?,
                            b.identity(qd)?,
                            b.identity(tail)?,
                        ])
                    },
                )?;
                let one = b.const_i32(1);
                let head2 = b.iadd(head, one)?;
                let hsum2 = b.add(hsum, h)?;
                Ok(vec![head2, state[3], state[0], state[1], state[2], hsum2])
            },
        )?;
        counts.push(outs[1]); // final tail = number of generated nodes
        sums.push(outs[5]);
    }
    let total = counts
        .into_iter()
        .try_fold(None::<Wire>, |acc, c| -> Result<Option<Wire>> {
            Ok(Some(match acc {
                None => c,
                Some(a) => mb.iadd(a, c)?,
            }))
        })?
        .expect("batch >= 1");
    let sum_state = sums
        .into_iter()
        .try_fold(None::<Wire>, |acc, s| -> Result<Option<Wire>> {
            Ok(Some(match acc {
                None => s,
                Some(a) => mb.add(a, s)?,
            }))
        })?
        .expect("batch >= 1");
    let mean_state = mb.mean_all(sum_state)?;
    mb.set_outputs(&[total, mean_state])?;
    mb.finish()
}

/// Seed-word feeds for a batch (deterministic per `data_seed`).
pub fn td_feeds(cfg: &TdConfig, data_seed: u64) -> Vec<rdg_tensor::Tensor> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(data_seed);
    (0..cfg.batch)
        .map(|_| rdg_tensor::Tensor::scalar_i32(rng.gen_range(0..cfg.vocab as i32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_exec::{Executor, Session};
    use std::sync::Arc;

    #[test]
    fn recursive_td_generates_dynamic_trees() {
        let cfg = TdConfig::tiny(4);
        let m = build_td_recursive(&cfg).unwrap();
        m.validate().unwrap();
        let s = Session::new(Executor::with_threads(2), m).unwrap();
        let out = s.run(td_feeds(&cfg, 1)).unwrap();
        let n = out[0].as_i32_scalar().unwrap();
        assert!(n >= 4, "at least the roots: {n}");
        assert!(n <= (cfg.max_nodes() * 4) as i32);
        assert!(out[1].as_f32_scalar().unwrap().is_finite());
    }

    #[test]
    fn structure_depends_on_input_values() {
        // Different seed words must (generically) yield different node
        // counts — the structure is decided by computed values.
        let cfg = TdConfig::tiny(1);
        let m = build_td_recursive(&cfg).unwrap();
        let s = Session::new(Executor::with_threads(2), m).unwrap();
        let counts: Vec<i32> = (0..16)
            .map(|w| {
                s.run(vec![rdg_tensor::Tensor::scalar_i32(w)]).unwrap()[0]
                    .as_i32_scalar()
                    .unwrap()
            })
            .collect();
        let distinct: std::collections::HashSet<i32> = counts.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "structure must vary with inputs: {counts:?}"
        );
    }

    #[test]
    fn iterative_matches_recursive_node_counts() {
        let cfg = TdConfig::tiny(3);
        let mr = build_td_recursive(&cfg).unwrap();
        let mi = build_td_iterative(&cfg).unwrap();
        let exec = Executor::with_threads(2);
        let sr = Session::new(Arc::clone(&exec), mr).unwrap();
        // Share parameters so decisions match exactly.
        let si = Session::with_params(exec, mi, Arc::clone(sr.params())).unwrap();
        for ds in 0..4 {
            let feeds = td_feeds(&cfg, ds);
            let nr = sr.run(feeds.clone()).unwrap()[0].as_i32_scalar().unwrap();
            let ni = si.run(feeds).unwrap()[0].as_i32_scalar().unwrap();
            assert_eq!(nr, ni, "node counts must agree (data seed {ds})");
        }
    }

    #[test]
    fn depth_cap_bounds_generation() {
        let mut cfg = TdConfig::tiny(1);
        cfg.max_depth = 2;
        cfg.threshold = 0.0; // always expand: full tree to the cap
        let m = build_td_recursive(&cfg).unwrap();
        let s = Session::new(Executor::with_threads(2), m).unwrap();
        let out = s.run(td_feeds(&cfg, 2)).unwrap();
        // Full binary tree of depth 2 (root=0): 2^3 - 1 = 7 nodes.
        assert_eq!(out[0].as_i32_scalar().unwrap(), 7);
    }
}
