//! The static-unrolling baseline (PyTorch stand-in, paper §2.2 / §6.1).
//!
//! For every data instance a *fresh, fully unrolled* graph is constructed —
//! one set of cell nodes per tree node, no SubGraphs, no control flow — then
//! planned, executed once, and discarded. This reproduces the two costs that
//! define the non-embedded-control-flow approach:
//!
//! * per-instance graph construction and planning overhead ("a new graph
//!   must be created for all input training instances"), and
//! * zero cross-instance graph reuse, so "the effect of compile-time graph
//!   optimization is near zero".
//!
//! Execution defaults to one worker thread, modelling eager per-op dispatch
//! order in the host language.

use crate::config::ModelConfig;
use crate::params::{Cell, ModelParams};
use rdg_data::{Instance, TreeNode};
use rdg_exec::{ExecError, Executor, GradStore, ParamStore, Session};

use rdg_graph::{Module, ModuleBuilder, Result, Wire};
use rdg_tensor::Tensor;
use std::sync::Arc;

/// Runs a sentiment model by building one unrolled module per instance.
pub struct UnrolledModel {
    cfg: ModelConfig,
    params: Arc<ParamStore>,
    exec: Arc<Executor>,
}

impl UnrolledModel {
    /// Creates the shared parameter store and a sequential executor.
    pub fn new(cfg: ModelConfig) -> Result<Self> {
        // Register parameters once to create the shared store.
        let mut mb = ModuleBuilder::new();
        let _ = ModelParams::register(&mut mb, &cfg);
        let c = mb.const_f32(0.0);
        mb.set_outputs(&[c])?;
        let module = mb.finish()?;
        let params = Arc::new(ParamStore::from_module(&module));
        Ok(UnrolledModel {
            cfg,
            params,
            exec: Executor::with_threads(1),
        })
    }

    /// The shared parameter store (for weight sharing with other styles).
    pub fn params(&self) -> &Arc<ParamStore> {
        &self.params
    }

    /// Replaces the parameter store (weight sharing with another session).
    pub fn set_params(&mut self, params: Arc<ParamStore>) {
        self.params = params;
    }

    /// Builds the unrolled module for one instance: outputs
    /// `[loss, logits[1, classes]]`.
    pub fn build_instance_module(&self, inst: &Instance) -> Result<Module> {
        let mut mb = ModuleBuilder::new();
        let params = ModelParams::register(&mut mb, &self.cfg);
        // Unroll: emit cell nodes directly, children before parents
        // (the tree is already topologically ordered).
        let n = inst.tree.len();
        let mut h: Vec<Option<Wire>> = vec![None; n];
        let mut c: Vec<Option<Wire>> = vec![None; n];
        for (i, node) in inst.tree.nodes.iter().enumerate() {
            match *node {
                TreeNode::Leaf { word } => {
                    let w = mb.const_i32(word);
                    let e = params.embedding.lookup(&mut mb, w)?;
                    match params.cell {
                        Cell::Rnn(cl) => h[i] = Some(cl.leaf(&mut mb, e)?),
                        Cell::Rntn(cl) => h[i] = Some(cl.leaf(&mut mb, e)?),
                        Cell::Lstm(cl) => {
                            let (hh, cc) = cl.leaf(&mut mb, e)?;
                            h[i] = Some(hh);
                            c[i] = Some(cc);
                        }
                    }
                }
                TreeNode::Internal { left, right } => {
                    let hl = h[left].expect("topological order");
                    let hr = h[right].expect("topological order");
                    match params.cell {
                        Cell::Rnn(cl) => h[i] = Some(cl.internal(&mut mb, hl, hr)?),
                        Cell::Rntn(cl) => h[i] = Some(cl.internal(&mut mb, hl, hr)?),
                        Cell::Lstm(cl) => {
                            let clf = c[left].expect("topological order");
                            let crt = c[right].expect("topological order");
                            let (hh, cc) = cl.internal(&mut mb, hl, clf, hr, crt)?;
                            h[i] = Some(hh);
                            c[i] = Some(cc);
                        }
                    }
                }
            }
        }
        let root_h = h[inst.tree.root()].expect("root computed");
        let logits = params.classifier.apply(&mut mb, root_h)?;
        let labels = mb.constant(Tensor::from_i32([1], vec![inst.label]).expect("one label"));
        let losses = mb.softmax_xent(logits, labels)?;
        let loss = mb.mean_all(losses)?;
        mb.set_outputs(&[loss, logits])?;
        mb.finish()
    }

    /// Inference over a batch: one graph construction + run per instance.
    ///
    /// Returns `(mean loss, per-instance logits)`.
    pub fn run_inference(
        &self,
        batch: &[Instance],
    ) -> std::result::Result<(f32, Vec<Tensor>), ExecError> {
        let mut loss_sum = 0.0f32;
        let mut logits = Vec::with_capacity(batch.len());
        for inst in batch {
            let module = self.build_instance_module(inst)?;
            let session =
                Session::with_params(Arc::clone(&self.exec), module, Arc::clone(&self.params))?;
            let outs = session.run(vec![])?;
            loss_sum += outs[0]
                .as_f32_scalar()
                .map_err(|e| ExecError::output(format!("loss output: {e}")))?;
            logits.push(outs[1].clone());
        }
        Ok((loss_sum / batch.len().max(1) as f32, logits))
    }

    /// One training step over a batch: per-instance forward+backward with
    /// fresh graphs, gradients averaged into `grads`.
    ///
    /// The caller applies the optimizer afterwards.
    pub fn run_training(
        &self,
        batch: &[Instance],
        grads: &GradStore,
    ) -> std::result::Result<f32, ExecError> {
        grads.clear();
        let mut loss_sum = 0.0f32;
        let scale = 1.0 / batch.len().max(1) as f32;
        for inst in batch {
            let module = self.build_instance_module(inst)?;
            let train = rdg_autodiff::build_training_module(&module, module.main.outputs[0])?;
            let session =
                Session::with_params(Arc::clone(&self.exec), train, Arc::clone(&self.params))?;
            let outs = session.run_training(vec![])?;
            loss_sum += outs[0]
                .as_f32_scalar()
                .map_err(|e| ExecError::output(format!("loss output: {e}")))?;
            // Merge this instance's gradients, scaled to the batch mean.
            for pid in self.params.ids() {
                if let Some(g) = session.grads().get(pid) {
                    let scaled = rdg_tensor::ops::scale(&g, scale).map_err(ExecError::optimizer)?;
                    grads
                        .accumulate(pid, &scaled)
                        .map_err(ExecError::optimizer)?;
                }
            }
        }
        Ok(loss_sum * scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, ModelKind};
    use rdg_data::{Dataset, DatasetConfig, Split};

    fn tiny_batch(n: usize) -> Vec<Instance> {
        let cfg = DatasetConfig {
            vocab: 100,
            n_train: n,
            n_valid: 0,
            min_len: 3,
            max_len: 8,
            ..DatasetConfig::default()
        };
        Dataset::generate(cfg).split(Split::Train).to_vec()
    }

    #[test]
    fn unrolled_inference_runs_all_kinds() {
        for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
            let um = UnrolledModel::new(ModelConfig::tiny(kind, 2)).unwrap();
            let (loss, logits) = um.run_inference(&tiny_batch(2)).unwrap();
            assert!(loss.is_finite() && loss > 0.0, "{kind:?}");
            assert_eq!(logits.len(), 2);
        }
    }

    #[test]
    fn unrolled_graph_has_no_control_flow() {
        let um = UnrolledModel::new(ModelConfig::tiny(ModelKind::TreeRnn, 1)).unwrap();
        let batch = tiny_batch(1);
        let m = um.build_instance_module(&batch[0]).unwrap();
        assert!(m.subgraphs.is_empty(), "fully unrolled: no SubGraphs");
        assert!(
            !m.main.nodes.iter().any(|n| n.op.is_control_flow()),
            "fully unrolled: no Invoke/Cond"
        );
        // Node count scales with the tree, unlike the recursive module.
        assert!(m.main.len() > batch[0].tree.len());
    }

    #[test]
    fn unrolled_training_accumulates_gradients() {
        let um = UnrolledModel::new(ModelConfig::tiny(ModelKind::TreeRnn, 2)).unwrap();
        let grads = GradStore::new(um.params().len());
        let loss = um.run_training(&tiny_batch(2), &grads).unwrap();
        assert!(loss.is_finite());
        let any = um.params().ids().any(|p| grads.get(p).is_some());
        assert!(any, "gradients merged across instances");
    }
}
