//! The recursive cells evaluated in the paper.
//!
//! Each cell provides a *leaf* computation (from a word embedding) and an
//! *internal* computation (combining the two children), matching the
//! binary-parse-tree models the paper trains:
//!
//! * [`TreeRnnCell`] — `h = tanh(W·[h_l; h_r] + b)` (Socher et al., 2011).
//!   The lightest per-node compute, hence — as §6.2 notes — the biggest
//!   relative win from parallel recursive execution.
//! * [`RntnCell`] — adds the bilinear tensor interaction
//!   `h = tanh([h_l;h_r]ᵀV[h_l;h_r] + W·[h_l;h_r] + b)` (Socher et al.,
//!   2013). An order of magnitude more work per node.
//! * [`TreeLstmCell`] — binary Child-Sum/N-ary TreeLSTM with per-child
//!   forget gates (Tai et al., 2015). Heaviest per node; carries a memory
//!   cell alongside the hidden state.
//!
//! Cells only *build graph fragments*; the same cell object is used by the
//! recursive, iterative, and unrolled model implementations, which is what
//! makes their outputs numerically identical (§6.2 of the paper).

use crate::layers::Linear;
use rand::Rng;
use rdg_graph::{ModuleBuilder, ParamId, Result, Wire};
use rdg_tensor::ops::rng::{randn, xavier_uniform};
use rdg_tensor::Tensor;

/// TreeRNN: `h = tanh(W·[h_l; h_r] + b)`, leaf: `h = tanh(W_e·x + b_e)`.
#[derive(Clone, Copy, Debug)]
pub struct TreeRnnCell {
    /// Hidden dimensionality.
    pub dim: usize,
    /// Leaf transform (embedding → hidden).
    pub leaf: Linear,
    /// Internal combiner (`[h_l; h_r]` → hidden).
    pub combine: Linear,
}

impl TreeRnnCell {
    /// Registers parameters for embedding width `embed` and hidden `dim`.
    pub fn new(mb: &mut ModuleBuilder, embed: usize, dim: usize, rng: &mut impl Rng) -> Self {
        TreeRnnCell {
            dim,
            leaf: Linear::new(mb, "treernn_leaf", embed, dim, rng),
            combine: Linear::new(mb, "treernn_comb", 2 * dim, dim, rng),
        }
    }

    /// Leaf computation from an embedding row `[1, embed]`.
    pub fn leaf(&self, mb: &mut ModuleBuilder, x: Wire) -> Result<Wire> {
        let h = self.leaf.apply(mb, x)?;
        mb.tanh(h)
    }

    /// Internal computation from the two child states `[1, dim]`.
    pub fn internal(&self, mb: &mut ModuleBuilder, hl: Wire, hr: Wire) -> Result<Wire> {
        let cat = mb.concat_cols(hl, hr)?;
        let h = self.combine.apply(mb, cat)?;
        mb.tanh(h)
    }
}

/// RNTN: TreeRNN plus the bilinear tensor term `xᵀ·V·x`.
#[derive(Clone, Copy, Debug)]
pub struct RntnCell {
    /// Hidden dimensionality.
    pub dim: usize,
    /// Leaf transform (embedding → hidden).
    pub leaf: Linear,
    /// Internal linear combiner.
    pub combine: Linear,
    /// The third-order tensor `[dim, 2·dim, 2·dim]`.
    pub v: ParamId,
}

impl RntnCell {
    /// Registers parameters for embedding width `embed` and hidden `dim`.
    pub fn new(mb: &mut ModuleBuilder, embed: usize, dim: usize, rng: &mut impl Rng) -> Self {
        let v = mb.param("rntn_v", randn([dim, 2 * dim, 2 * dim], 0.01, rng));
        RntnCell {
            dim,
            leaf: Linear::new(mb, "rntn_leaf", embed, dim, rng),
            combine: Linear::new(mb, "rntn_comb", 2 * dim, dim, rng),
            v,
        }
    }

    /// Leaf computation from an embedding row.
    pub fn leaf(&self, mb: &mut ModuleBuilder, x: Wire) -> Result<Wire> {
        let h = self.leaf.apply(mb, x)?;
        mb.tanh(h)
    }

    /// Internal computation: `tanh(xᵀVx + W·x + b)` with `x = [h_l; h_r]`.
    pub fn internal(&self, mb: &mut ModuleBuilder, hl: Wire, hr: Wire) -> Result<Wire> {
        let cat = mb.concat_cols(hl, hr)?;
        let vv = mb.param_read(self.v)?;
        let bil = mb.bilinear(cat, vv)?;
        let lin = self.combine.apply(mb, cat)?;
        let sum = mb.add(bil, lin)?;
        mb.tanh(sum)
    }
}

/// Binary TreeLSTM with per-child forget gates (Tai et al., 2015).
#[derive(Clone, Copy, Debug)]
pub struct TreeLstmCell {
    /// Hidden/cell dimensionality.
    pub dim: usize,
    /// Leaf input gate (from the embedding).
    pub leaf_i: Linear,
    /// Leaf output gate.
    pub leaf_o: Linear,
    /// Leaf candidate transform.
    pub leaf_u: Linear,
    /// Internal input gate (from `[h_l; h_r]`).
    pub int_i: Linear,
    /// Internal left-child forget gate.
    pub int_fl: Linear,
    /// Internal right-child forget gate.
    pub int_fr: Linear,
    /// Internal output gate.
    pub int_o: Linear,
    /// Internal candidate transform.
    pub int_u: Linear,
}

impl TreeLstmCell {
    /// Registers parameters for embedding width `embed` and hidden `dim`.
    pub fn new(mb: &mut ModuleBuilder, embed: usize, dim: usize, rng: &mut impl Rng) -> Self {
        // Forget-gate biases start at 1.0 (standard LSTM trick) so memory
        // flows at initialization.
        let mut lin_biased = |mb: &mut ModuleBuilder, name: &str, ind: usize, bias: f32| {
            let w = mb.param(format!("{name}_w"), xavier_uniform(ind, dim, rng));
            let b = mb.param(format!("{name}_b"), Tensor::full([dim], bias));
            Linear { w, b }
        };
        TreeLstmCell {
            dim,
            leaf_i: lin_biased(mb, "tlstm_leaf_i", embed, 0.0),
            leaf_o: lin_biased(mb, "tlstm_leaf_o", embed, 0.0),
            leaf_u: lin_biased(mb, "tlstm_leaf_u", embed, 0.0),
            int_i: lin_biased(mb, "tlstm_int_i", 2 * dim, 0.0),
            int_fl: lin_biased(mb, "tlstm_int_fl", 2 * dim, 1.0),
            int_fr: lin_biased(mb, "tlstm_int_fr", 2 * dim, 1.0),
            int_o: lin_biased(mb, "tlstm_int_o", 2 * dim, 0.0),
            int_u: lin_biased(mb, "tlstm_int_u", 2 * dim, 0.0),
        }
    }

    /// Leaf computation: `(h, c)` from an embedding row `[1, embed]`.
    pub fn leaf(&self, mb: &mut ModuleBuilder, x: Wire) -> Result<(Wire, Wire)> {
        let i = self.leaf_i.apply(mb, x)?;
        let i = mb.sigmoid(i)?;
        let o = self.leaf_o.apply(mb, x)?;
        let o = mb.sigmoid(o)?;
        let u = self.leaf_u.apply(mb, x)?;
        let u = mb.tanh(u)?;
        let c = mb.mul(i, u)?;
        let ct = mb.tanh(c)?;
        let h = mb.mul(o, ct)?;
        Ok((h, c))
    }

    /// Internal computation: `(h, c)` from both children's `(h, c)`.
    pub fn internal(
        &self,
        mb: &mut ModuleBuilder,
        hl: Wire,
        cl: Wire,
        hr: Wire,
        cr: Wire,
    ) -> Result<(Wire, Wire)> {
        let x = mb.concat_cols(hl, hr)?;
        let i = self.int_i.apply(mb, x)?;
        let i = mb.sigmoid(i)?;
        let fl = self.int_fl.apply(mb, x)?;
        let fl = mb.sigmoid(fl)?;
        let fr = self.int_fr.apply(mb, x)?;
        let fr = mb.sigmoid(fr)?;
        let o = self.int_o.apply(mb, x)?;
        let o = mb.sigmoid(o)?;
        let u = self.int_u.apply(mb, x)?;
        let u = mb.tanh(u)?;
        let iu = mb.mul(i, u)?;
        let flc = mb.mul(fl, cl)?;
        let frc = mb.mul(fr, cr)?;
        let c0 = mb.add(iu, flc)?;
        let c = mb.add(c0, frc)?;
        let ct = mb.tanh(c)?;
        let h = mb.mul(o, ct)?;
        Ok((h, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdg_autodiff::check_gradients;
    use rdg_exec::{Executor, Session};

    fn run_scalar(m: rdg_graph::Module) -> Vec<Tensor> {
        Session::new(Executor::with_threads(2), m)
            .unwrap()
            .run(vec![])
            .unwrap()
    }

    #[test]
    fn treernn_cell_output_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mb = ModuleBuilder::new();
        let cell = TreeRnnCell::new(&mut mb, 4, 3, &mut rng);
        let e = mb.constant(Tensor::ones([1, 4]));
        let h = cell.leaf(&mut mb, e).unwrap();
        let top = cell.internal(&mut mb, h, h).unwrap();
        mb.set_outputs(&[top]).unwrap();
        let out = run_scalar(mb.finish().unwrap());
        assert_eq!(out[0].shape().dims(), &[1, 3]);
        assert!(out[0].f32s().unwrap().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn rntn_cell_uses_tensor_term() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mb = ModuleBuilder::new();
        let cell = RntnCell::new(&mut mb, 4, 3, &mut rng);
        let e = mb.constant(Tensor::ones([1, 4]));
        let h = cell.leaf(&mut mb, e).unwrap();
        let top = cell.internal(&mut mb, h, h).unwrap();
        mb.set_outputs(&[top]).unwrap();
        let m = mb.finish().unwrap();
        assert!(
            m.main
                .nodes
                .iter()
                .any(|n| matches!(n.op, rdg_graph::OpKind::Bilinear)),
            "RNTN internal must contain a Bilinear node"
        );
        let out = run_scalar(m);
        assert_eq!(out[0].shape().dims(), &[1, 3]);
    }

    #[test]
    fn treelstm_cell_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mb = ModuleBuilder::new();
        let cell = TreeLstmCell::new(&mut mb, 4, 3, &mut rng);
        let e = mb.constant(Tensor::ones([1, 4]));
        let (h1, c1) = cell.leaf(&mut mb, e).unwrap();
        let (h2, c2) = cell.leaf(&mut mb, e).unwrap();
        let (h, c) = cell.internal(&mut mb, h1, c1, h2, c2).unwrap();
        mb.set_outputs(&[h, c]).unwrap();
        let out = run_scalar(mb.finish().unwrap());
        assert_eq!(out[0].shape().dims(), &[1, 3]);
        assert_eq!(out[1].shape().dims(), &[1, 3]);
    }

    #[test]
    fn all_cells_gradcheck() {
        // One small two-leaf tree per cell type, loss = mean(root state):
        // the full cell math must agree with finite differences.
        let mut rng = StdRng::seed_from_u64(6);

        // TreeRNN.
        let mut mb = ModuleBuilder::new();
        let cell = TreeRnnCell::new(&mut mb, 3, 2, &mut rng);
        let e1 = mb.constant(Tensor::from_f32([1, 3], vec![0.1, -0.2, 0.3]).unwrap());
        let e2 = mb.constant(Tensor::from_f32([1, 3], vec![-0.4, 0.5, 0.0]).unwrap());
        let h1 = cell.leaf(&mut mb, e1).unwrap();
        let h2 = cell.leaf(&mut mb, e2).unwrap();
        let top = cell.internal(&mut mb, h1, h2).unwrap();
        let loss = mb.mean_all(top).unwrap();
        mb.set_outputs(&[loss]).unwrap();
        let r = check_gradients(&mb.finish().unwrap(), 0, &[], 1e-2, 8).unwrap();
        assert!(r.max_rel_err < 0.05, "TreeRNN rel err {}", r.max_rel_err);

        // RNTN.
        let mut mb = ModuleBuilder::new();
        let cell = RntnCell::new(&mut mb, 3, 2, &mut rng);
        let e1 = mb.constant(Tensor::from_f32([1, 3], vec![0.1, -0.2, 0.3]).unwrap());
        let e2 = mb.constant(Tensor::from_f32([1, 3], vec![-0.4, 0.5, 0.0]).unwrap());
        let h1 = cell.leaf(&mut mb, e1).unwrap();
        let h2 = cell.leaf(&mut mb, e2).unwrap();
        let top = cell.internal(&mut mb, h1, h2).unwrap();
        let loss = mb.mean_all(top).unwrap();
        mb.set_outputs(&[loss]).unwrap();
        let r = check_gradients(&mb.finish().unwrap(), 0, &[], 1e-2, 8).unwrap();
        assert!(r.max_rel_err < 0.05, "RNTN rel err {}", r.max_rel_err);

        // TreeLSTM.
        let mut mb = ModuleBuilder::new();
        let cell = TreeLstmCell::new(&mut mb, 3, 2, &mut rng);
        let e1 = mb.constant(Tensor::from_f32([1, 3], vec![0.1, -0.2, 0.3]).unwrap());
        let e2 = mb.constant(Tensor::from_f32([1, 3], vec![-0.4, 0.5, 0.0]).unwrap());
        let (h1, c1) = cell.leaf(&mut mb, e1).unwrap();
        let (h2, c2) = cell.leaf(&mut mb, e2).unwrap();
        let (h, _c) = cell.internal(&mut mb, h1, c1, h2, c2).unwrap();
        let loss = mb.mean_all(h).unwrap();
        mb.set_outputs(&[loss]).unwrap();
        let r = check_gradients(&mb.finish().unwrap(), 0, &[], 1e-2, 4).unwrap();
        assert!(r.max_rel_err < 0.05, "TreeLSTM rel err {}", r.max_rel_err);
    }
}
