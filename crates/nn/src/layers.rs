//! Dense and embedding layers as graph fragments.

use rand::Rng;
use rdg_graph::{ModuleBuilder, ParamId, Result, Wire};
use rdg_tensor::ops::rng::{uniform, xavier_uniform};
use rdg_tensor::Tensor;

/// A dense layer `y = x·W + b`.
#[derive(Clone, Copy, Debug)]
pub struct Linear {
    /// Weight parameter `[in, out]`.
    pub w: ParamId,
    /// Bias parameter `[out]`.
    pub b: ParamId,
}

impl Linear {
    /// Registers Xavier-initialized parameters named `{name}_w` / `{name}_b`.
    pub fn new(
        mb: &mut ModuleBuilder,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = mb.param(format!("{name}_w"), xavier_uniform(in_dim, out_dim, rng));
        let b = mb.param(format!("{name}_b"), Tensor::zeros([out_dim]));
        Linear { w, b }
    }

    /// Applies the layer in the current scope: `x·W + b`.
    pub fn apply(&self, mb: &mut ModuleBuilder, x: Wire) -> Result<Wire> {
        let w = mb.param_read(self.w)?;
        let b = mb.param_read(self.b)?;
        let h = mb.matmul(x, w)?;
        mb.add_bias(h, b)
    }

    /// Applies the layer without the bias term.
    pub fn apply_no_bias(&self, mb: &mut ModuleBuilder, x: Wire) -> Result<Wire> {
        let w = mb.param_read(self.w)?;
        mb.matmul(x, w)
    }
}

/// An embedding table `[vocab, dim]` with row-sparse gradients.
#[derive(Clone, Copy, Debug)]
pub struct Embedding {
    /// The table parameter.
    pub table: ParamId,
    /// Embedding dimensionality.
    pub dim: usize,
}

impl Embedding {
    /// Registers a uniform(-0.05, 0.05) initialized table.
    pub fn new(
        mb: &mut ModuleBuilder,
        name: &str,
        vocab: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let table = mb.param(name.to_string(), uniform([vocab, dim], -0.05, 0.05, rng));
        Embedding { table, dim }
    }

    /// Looks up rows for `ids` (`i32[m]`) in the current scope.
    ///
    /// The gather reads the `Param` node directly so autodiff produces a
    /// row-sparse `GradSinkRows` instead of a dense scatter over the table.
    pub fn lookup(&self, mb: &mut ModuleBuilder, ids: Wire) -> Result<Wire> {
        let t = mb.param_read(self.table)?;
        mb.gather_rows(t, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rdg_exec::{Executor, Session};

    #[test]
    fn linear_shapes_and_execution() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mb = ModuleBuilder::new();
        let lin = Linear::new(&mut mb, "l", 3, 2, &mut rng);
        let x = mb.constant(Tensor::ones([2, 3]));
        let y = lin.apply(&mut mb, x).unwrap();
        mb.set_outputs(&[y]).unwrap();
        let s = Session::new(Executor::with_threads(2), mb.finish().unwrap()).unwrap();
        let out = s.run(vec![]).unwrap();
        assert_eq!(out[0].shape().dims(), &[2, 2]);
    }

    #[test]
    fn embedding_lookup_matches_table() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mb = ModuleBuilder::new();
        let emb = Embedding::new(&mut mb, "emb", 10, 4, &mut rng);
        let ids = mb.constant(Tensor::from_i32([2], vec![3, 7]).unwrap());
        let rows = emb.lookup(&mut mb, ids).unwrap();
        mb.set_outputs(&[rows]).unwrap();
        let m = mb.finish().unwrap();
        let table = m.params[0].init.clone();
        let s = Session::new(Executor::with_threads(2), m).unwrap();
        let out = s.run(vec![]).unwrap();
        let tv = table.f32s().unwrap();
        assert_eq!(&out[0].f32s().unwrap()[0..4], &tv[12..16]);
        assert_eq!(&out[0].f32s().unwrap()[4..8], &tv[28..32]);
    }
}
