//! Neural-network building blocks on top of the `rdg` graph IR.
//!
//! This crate supplies what the paper's evaluation models are made of:
//!
//! * [`layers`] — dense layers and embedding tables (with row-sparse
//!   gradients) expressed as graph fragments over a
//!   [`rdg_graph::ModuleBuilder`].
//! * [`cells`] — the three recursive cells evaluated in the paper:
//!   TreeRNN (Socher et al. '11), RNTN (Socher et al. '13) and the binary
//!   TreeLSTM (Tai et al. '15), each with a leaf and an internal variant.
//! * [`optim`] — SGD, Adagrad (what the original TreeLSTM paper used) and
//!   Adam, applying [`rdg_exec::GradStore`] contents to a
//!   [`rdg_exec::ParamStore`], with global-norm clipping.
//! * [`train`] — a small trainer loop helper (session + optimizer).
//! * [`metrics`] — classification accuracy.

pub mod cells;
pub mod layers;
pub mod metrics;
pub mod optim;
pub mod train;

pub use cells::{RntnCell, TreeLstmCell, TreeRnnCell};
pub use layers::{Embedding, Linear};
pub use metrics::binary_accuracy;
pub use optim::{Adagrad, Adam, Optimizer, Sgd};
pub use train::Trainer;
