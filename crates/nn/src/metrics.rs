//! Evaluation metrics.

use rdg_tensor::{ops, Result, Tensor};

/// Classification accuracy of `logits: [m, c]` against labels `i32[m]`.
pub fn accuracy(logits: &Tensor, labels: &Tensor) -> Result<f32> {
    let pred = ops::argmax_rows(logits)?;
    let pv = pred.i32s()?;
    let lv = labels.i32s()?;
    if pv.len() != lv.len() {
        return Err(rdg_tensor::TensorError::LengthMismatch {
            expected: lv.len(),
            got: pv.len(),
            ctx: "accuracy",
        });
    }
    let correct = pv.iter().zip(lv.iter()).filter(|(a, b)| a == b).count();
    Ok(correct as f32 / pv.len().max(1) as f32)
}

/// Binary accuracy where class 1 is "positive" (paper Figure 9's metric).
pub fn binary_accuracy(logits: &Tensor, labels: &Tensor) -> Result<f32> {
    accuracy(logits, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_imperfect_accuracy() {
        let logits = Tensor::from_f32([3, 2], vec![2.0, -1.0, -3.0, 0.5, 1.0, 4.0]).unwrap();
        let labels = Tensor::from_i32([3], vec![0, 1, 1]).unwrap();
        assert!((accuracy(&logits, &labels).unwrap() - 1.0).abs() < 1e-6);
        let wrong = Tensor::from_i32([3], vec![1, 1, 1]).unwrap();
        assert!((accuracy(&logits, &wrong).unwrap() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn length_mismatch_rejected() {
        let logits = Tensor::zeros([2, 2]);
        let labels = Tensor::from_i32([3], vec![0, 0, 0]).unwrap();
        assert!(accuracy(&logits, &labels).is_err());
    }
}
