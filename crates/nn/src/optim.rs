//! Optimizers: apply accumulated gradients to the parameter store.
//!
//! Optimizers run host-side between steps (the graph's `GradSink` nodes have
//! already summed all per-frame contributions). Adagrad is what the original
//! TreeLSTM paper used; SGD and Adam round out the set.

use rdg_exec::{GradStore, ParamStore};

use rdg_tensor::{Tensor, TensorError};

/// A parameter-update rule.
pub trait Optimizer: Send {
    /// Applies one step of updates from `grads` to `params`.
    fn step(&mut self, params: &ParamStore, grads: &GradStore) -> Result<(), TensorError>;
}

/// Computes the scale factor implementing global-norm gradient clipping.
pub fn clip_factor(grads: &GradStore, max_norm: Option<f32>) -> f32 {
    match max_norm {
        Some(mx) => {
            let n = grads.global_norm();
            if n > mx && n > 0.0 {
                mx / n
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// Global-norm clip threshold.
    pub clip_norm: Option<f32>,
    velocity: Vec<Option<Tensor>>,
}

impl Sgd {
    /// Creates SGD with the given learning rate (no momentum, no clipping).
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            clip_norm: None,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &ParamStore, grads: &GradStore) -> Result<(), TensorError> {
        let scale = clip_factor(grads, self.clip_norm);
        if self.velocity.len() < params.len() {
            self.velocity.resize(params.len(), None);
        }
        for pid in params.ids() {
            let Some(g) = grads.get(pid) else { continue };
            let gv = g.f32s()?;
            let mut p = params.read(pid);
            let pv = p.make_f32_mut()?;
            if self.momentum > 0.0 {
                let vel = &mut self.velocity[pid.0 as usize];
                if vel.is_none() {
                    *vel = Some(Tensor::zeros(g.shape().clone()));
                }
                let v = vel.as_mut().expect("just set");
                let vv = v.make_f32_mut()?;
                for i in 0..pv.len() {
                    vv[i] = self.momentum * vv[i] + gv[i] * scale;
                    pv[i] -= self.lr * vv[i];
                }
            } else {
                for i in 0..pv.len() {
                    pv[i] -= self.lr * gv[i] * scale;
                }
            }
            params.write(pid, p);
        }
        Ok(())
    }
}

/// Adagrad (Duchi et al.): per-element adaptive learning rates.
pub struct Adagrad {
    /// Learning rate.
    pub lr: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Global-norm clip threshold.
    pub clip_norm: Option<f32>,
    accum: Vec<Option<Tensor>>,
}

impl Adagrad {
    /// Creates Adagrad with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Adagrad {
            lr,
            eps: 1e-8,
            clip_norm: None,
            accum: Vec::new(),
        }
    }
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &ParamStore, grads: &GradStore) -> Result<(), TensorError> {
        let scale = clip_factor(grads, self.clip_norm);
        if self.accum.len() < params.len() {
            self.accum.resize(params.len(), None);
        }
        for pid in params.ids() {
            let Some(g) = grads.get(pid) else { continue };
            let gv = g.f32s()?;
            let acc = &mut self.accum[pid.0 as usize];
            if acc.is_none() {
                *acc = Some(Tensor::zeros(g.shape().clone()));
            }
            let a = acc.as_mut().expect("just set");
            let av = a.make_f32_mut()?;
            let mut p = params.read(pid);
            let pv = p.make_f32_mut()?;
            for i in 0..pv.len() {
                let gs = gv[i] * scale;
                av[i] += gs * gs;
                pv[i] -= self.lr * gs / (av[i].sqrt() + self.eps);
            }
            params.write(pid, p);
        }
        Ok(())
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Global-norm clip threshold.
    pub clip_norm: Option<f32>,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &ParamStore, grads: &GradStore) -> Result<(), TensorError> {
        let scale = clip_factor(grads, self.clip_norm);
        self.t += 1;
        if self.m.len() < params.len() {
            self.m.resize(params.len(), None);
            self.v.resize(params.len(), None);
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for pid in params.ids() {
            let Some(g) = grads.get(pid) else { continue };
            let gv = g.f32s()?;
            for slot in [&mut self.m[pid.0 as usize], &mut self.v[pid.0 as usize]] {
                if slot.is_none() {
                    *slot = Some(Tensor::zeros(g.shape().clone()));
                }
            }
            let mut p = params.read(pid);
            {
                let m = self.m[pid.0 as usize].as_mut().expect("set");
                let v = self.v[pid.0 as usize].as_mut().expect("set");
                let mv = m.make_f32_mut()?;
                let vv = v.make_f32_mut()?;
                let pv = p.make_f32_mut()?;
                for i in 0..pv.len() {
                    let gs = gv[i] * scale;
                    mv[i] = self.beta1 * mv[i] + (1.0 - self.beta1) * gs;
                    vv[i] = self.beta2 * vv[i] + (1.0 - self.beta2) * gs * gs;
                    let mhat = mv[i] / bc1;
                    let vhat = vv[i] / bc2;
                    pv[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
                }
            }
            params.write(pid, p);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdg_graph::{Module, ParamId, ParamSpec};

    fn store_with(v: Vec<f32>) -> (ParamStore, GradStore) {
        let mut m = Module::default();
        let n = v.len();
        m.params.push(ParamSpec {
            name: "p".into(),
            init: Tensor::from_f32([n], v).unwrap(),
        });
        let ps = ParamStore::from_module(&m);
        let gs = GradStore::new(1);
        (ps, gs)
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let (ps, gs) = store_with(vec![1.0, -1.0]);
        gs.accumulate(ParamId(0), &Tensor::from_f32([2], vec![0.5, -0.5]).unwrap())
            .unwrap();
        Sgd::new(0.1).step(&ps, &gs).unwrap();
        let p = ps.read(ParamId(0));
        assert!(p.allclose(&Tensor::from_f32([2], vec![0.95, -0.95]).unwrap(), 1e-6));
    }

    #[test]
    fn sgd_momentum_accumulates() {
        let (ps, gs) = store_with(vec![0.0]);
        gs.accumulate(ParamId(0), &Tensor::from_f32([1], vec![1.0]).unwrap())
            .unwrap();
        let mut opt = Sgd::new(0.1);
        opt.momentum = 0.9;
        opt.step(&ps, &gs).unwrap(); // v=1.0, p=-0.1
        opt.step(&ps, &gs).unwrap(); // v=1.9, p=-0.29
        let p = ps.read(ParamId(0)).as_f32_scalar().unwrap();
        assert!((p + 0.29).abs() < 1e-5, "p = {p}");
    }

    #[test]
    fn adagrad_shrinks_effective_lr() {
        let (ps, gs) = store_with(vec![0.0]);
        gs.accumulate(ParamId(0), &Tensor::from_f32([1], vec![1.0]).unwrap())
            .unwrap();
        let mut opt = Adagrad::new(0.1);
        opt.step(&ps, &gs).unwrap();
        let p1 = ps.read(ParamId(0)).as_f32_scalar().unwrap();
        opt.step(&ps, &gs).unwrap();
        let p2 = ps.read(ParamId(0)).as_f32_scalar().unwrap();
        let d1 = -p1;
        let d2 = p1 - p2;
        assert!(d2 < d1, "second step smaller: {d1} vs {d2}");
        assert!((d1 - 0.1).abs() < 1e-4, "first step ≈ lr");
    }

    #[test]
    fn adam_bias_correction_first_step() {
        let (ps, gs) = store_with(vec![0.0]);
        gs.accumulate(ParamId(0), &Tensor::from_f32([1], vec![0.3]).unwrap())
            .unwrap();
        let mut opt = Adam::new(0.01);
        opt.step(&ps, &gs).unwrap();
        // With bias correction, the first step is ≈ lr regardless of g scale.
        let p = ps.read(ParamId(0)).as_f32_scalar().unwrap();
        assert!((p + 0.01).abs() < 1e-4, "p = {p}");
    }

    #[test]
    fn clipping_caps_global_norm() {
        let (_ps, gs) = store_with(vec![0.0, 0.0]);
        gs.accumulate(ParamId(0), &Tensor::from_f32([2], vec![3.0, 4.0]).unwrap())
            .unwrap();
        let f = clip_factor(&gs, Some(1.0));
        assert!((f - 0.2).abs() < 1e-6, "norm 5 clipped to 1 → factor 0.2");
        assert_eq!(clip_factor(&gs, Some(10.0)), 1.0);
        assert_eq!(clip_factor(&gs, None), 1.0);
    }

    #[test]
    fn missing_gradients_are_skipped() {
        let (ps, gs) = store_with(vec![1.0]);
        // No accumulation: parameter must stay put.
        Sgd::new(0.5).step(&ps, &gs).unwrap();
        assert_eq!(ps.read(ParamId(0)).as_f32_scalar().unwrap(), 1.0);
    }
}
