//! A minimal training loop helper.

use crate::optim::Optimizer;
use rdg_exec::{ExecError, Session};
use rdg_tensor::Tensor;

/// Couples a training [`Session`] with an [`Optimizer`].
///
/// Convention: the training module's **output 0 is the scalar loss** (extra
/// outputs are permitted and returned untouched).
pub struct Trainer<O: Optimizer> {
    /// The training session (gradient sinks included).
    pub session: Session,
    /// The update rule.
    pub optimizer: O,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer.
    pub fn new(session: Session, optimizer: O) -> Self {
        Trainer { session, optimizer }
    }

    /// One step: forward + backward + parameter update; returns the loss.
    pub fn step(&mut self, feeds: Vec<Tensor>) -> Result<f32, ExecError> {
        let outs = self.session.run_training(feeds)?;
        let loss = outs[0]
            .as_f32_scalar()
            .map_err(|e| ExecError::output(format!("loss output: {e}")))?;
        self.optimizer
            .step(self.session.params(), self.session.grads())
            .map_err(ExecError::optimizer)?;
        Ok(loss)
    }

    /// One minibatch step: all instances execute as concurrent root frames
    /// ([`Session::run_training_batch`]), gradients are rescaled to the
    /// minibatch **mean**, and one optimizer update is applied; returns the
    /// per-instance losses.
    ///
    /// An empty batch is a no-op (no gradient clear, no optimizer step).
    pub fn step_batch(&mut self, feeds_list: Vec<Vec<Tensor>>) -> Result<Vec<f32>, ExecError> {
        if feeds_list.is_empty() {
            return Ok(Vec::new());
        }
        let n = feeds_list.len();
        let outs = self.session.run_training_batch(feeds_list)?;
        let losses = outs
            .iter()
            .enumerate()
            .map(|(i, o)| {
                o[0].as_f32_scalar()
                    .map_err(|e| ExecError::output(format!("loss output of instance {i}: {e}")))
            })
            .collect::<Result<Vec<f32>, ExecError>>()?;
        // The batch accumulates raw sums; one scale turns them into means
        // so step size does not grow with the batch.
        self.session
            .grads()
            .scale_all(1.0 / n as f32)
            .map_err(ExecError::optimizer)?;
        self.optimizer
            .step(self.session.params(), self.session.grads())
            .map_err(ExecError::optimizer)?;
        Ok(losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use rdg_autodiff::build_training_module;
    use rdg_exec::Executor;
    use rdg_graph::ModuleBuilder;

    #[test]
    fn trainer_reduces_quadratic_loss() {
        // loss = (w - 3)², minimized at w = 3.
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(0.0)).unwrap();
        let t = mb.const_f32(3.0);
        let d = mb.sub(w, t).unwrap();
        let loss = mb.mul(d, d).unwrap();
        mb.set_outputs(&[loss]).unwrap();
        let m = mb.finish().unwrap();
        let train = build_training_module(&m, m.main.outputs[0]).unwrap();
        let sess = Session::new(Executor::with_threads(2), train).unwrap();
        let mut trainer = Trainer::new(sess, Sgd::new(0.1));
        let first = trainer.step(vec![]).unwrap();
        let mut last = first;
        for _ in 0..50 {
            last = trainer.step(vec![]).unwrap();
        }
        assert!(first > 8.0, "initial loss (0-3)² = 9");
        assert!(last < 1e-3, "converged loss {last}");
        let w = trainer.session.params().read(rdg_graph::ParamId(0));
        assert!((w.as_f32_scalar().unwrap() - 3.0).abs() < 0.05);
    }

    #[test]
    fn step_batch_converges_and_reports_per_instance_losses() {
        // loss = (w - x)² on a fed target x; a minibatch feeds several
        // targets at once and the mean gradient pulls w to their mean.
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(0.0)).unwrap();
        let x = mb.main_input(rdg_tensor::DType::F32);
        let d = mb.sub(w, x).unwrap();
        let loss = mb.mul(d, d).unwrap();
        mb.set_outputs(&[loss]).unwrap();
        let m = mb.finish().unwrap();
        let train = build_training_module(&m, m.main.outputs[0]).unwrap();
        let sess = Session::new(Executor::with_threads(2), train).unwrap();
        let mut trainer = Trainer::new(sess, Sgd::new(0.2));
        let targets = [1.0f32, 2.0, 3.0, 6.0]; // mean = 3
        let batch = || -> Vec<Vec<Tensor>> {
            targets
                .iter()
                .map(|&t| vec![Tensor::scalar_f32(t)])
                .collect()
        };
        let first = trainer.step_batch(batch()).unwrap();
        assert_eq!(first.len(), 4, "one loss per instance");
        assert!((first[3] - 36.0).abs() < 1e-4, "(0-6)² on untouched w");
        for _ in 0..60 {
            trainer.step_batch(batch()).unwrap();
        }
        let w = trainer.session.params().read(rdg_graph::ParamId(0));
        assert!(
            (w.as_f32_scalar().unwrap() - 3.0).abs() < 0.05,
            "w converges to the minibatch-mean optimum"
        );
        assert!(trainer.step_batch(vec![]).unwrap().is_empty());
    }
}
