//! A minimal training loop helper.

use crate::optim::Optimizer;
use rdg_exec::{ExecError, Session};
use rdg_tensor::Tensor;

/// Couples a training [`Session`] with an [`Optimizer`].
///
/// Convention: the training module's **output 0 is the scalar loss** (extra
/// outputs are permitted and returned untouched).
pub struct Trainer<O: Optimizer> {
    /// The training session (gradient sinks included).
    pub session: Session,
    /// The update rule.
    pub optimizer: O,
}

impl<O: Optimizer> Trainer<O> {
    /// Creates a trainer.
    pub fn new(session: Session, optimizer: O) -> Self {
        Trainer { session, optimizer }
    }

    /// One step: forward + backward + parameter update; returns the loss.
    pub fn step(&mut self, feeds: Vec<Tensor>) -> Result<f32, ExecError> {
        let outs = self.session.run_training(feeds)?;
        let loss = outs[0].as_f32_scalar().map_err(|e| ExecError::BadFeed {
            msg: format!("loss output: {e}"),
        })?;
        self.optimizer
            .step(self.session.params(), self.session.grads())
            .map_err(|e| ExecError::BadFeed {
                msg: format!("optimizer: {e}"),
            })?;
        Ok(loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Sgd;
    use rdg_autodiff::build_training_module;
    use rdg_exec::Executor;
    use rdg_graph::ModuleBuilder;

    #[test]
    fn trainer_reduces_quadratic_loss() {
        // loss = (w - 3)², minimized at w = 3.
        let mut mb = ModuleBuilder::new();
        let w = mb.param_wire("w", Tensor::scalar_f32(0.0)).unwrap();
        let t = mb.const_f32(3.0);
        let d = mb.sub(w, t).unwrap();
        let loss = mb.mul(d, d).unwrap();
        mb.set_outputs(&[loss]).unwrap();
        let m = mb.finish().unwrap();
        let train = build_training_module(&m, m.main.outputs[0]).unwrap();
        let sess = Session::new(Executor::with_threads(2), train).unwrap();
        let mut trainer = Trainer::new(sess, Sgd::new(0.1));
        let first = trainer.step(vec![]).unwrap();
        let mut last = first;
        for _ in 0..50 {
            last = trainer.step(vec![]).unwrap();
        }
        assert!(first > 8.0, "initial loss (0-3)² = 9");
        assert!(last < 1e-3, "converged loss {last}");
        let w = trainer.session.params().read(rdg_graph::ParamId(0));
        assert!((w.as_f32_scalar().unwrap() - 3.0).abs() < 0.05);
    }
}
