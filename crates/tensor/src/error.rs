//! Error type shared by all tensor kernels.

use crate::shape::Shape;
use crate::tensor::DType;
use std::fmt;

/// Errors produced by tensor construction and kernel execution.
///
/// Kernels never panic on malformed operands; they return one of these
/// variants so callers (typically the dataflow executor) can attach graph
/// context before surfacing the failure to the user.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// An operand had a different dtype than the kernel requires.
    DTypeMismatch {
        /// Dtype the kernel expected.
        expected: DType,
        /// Dtype that was actually supplied.
        got: DType,
        /// Human-readable kernel / argument context.
        ctx: &'static str,
    },
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left / first operand.
        lhs: Shape,
        /// Shape of the right / second operand.
        rhs: Shape,
        /// Human-readable kernel context.
        ctx: &'static str,
    },
    /// An operand had the wrong rank for the kernel.
    RankMismatch {
        /// Rank the kernel expected.
        expected: usize,
        /// Rank that was actually supplied.
        got: usize,
        /// Human-readable kernel context.
        ctx: &'static str,
    },
    /// An index (row id, axis, slice bound, …) was out of range.
    IndexOutOfRange {
        /// The offending index.
        index: i64,
        /// Exclusive upper bound that was violated.
        bound: usize,
        /// Human-readable kernel context.
        ctx: &'static str,
    },
    /// The element count of a buffer did not match the requested shape.
    LengthMismatch {
        /// Expected element count (product of shape dims).
        expected: usize,
        /// Actual buffer length.
        got: usize,
        /// Human-readable context.
        ctx: &'static str,
    },
    /// A scalar was required (tensor with exactly one element).
    NotAScalar {
        /// Shape of the non-scalar operand.
        shape: Shape,
        /// Human-readable kernel context.
        ctx: &'static str,
    },
    /// Catch-all for kernel-specific invariant violations.
    Invalid {
        /// Description of the violated invariant.
        msg: String,
    },
}

impl TensorError {
    /// Creates an [`TensorError::Invalid`] from anything displayable.
    pub fn invalid(msg: impl fmt::Display) -> Self {
        TensorError::Invalid {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DTypeMismatch { expected, got, ctx } => {
                write!(f, "{ctx}: expected dtype {expected:?}, got {got:?}")
            }
            TensorError::ShapeMismatch { lhs, rhs, ctx } => {
                write!(f, "{ctx}: incompatible shapes {lhs} and {rhs}")
            }
            TensorError::RankMismatch { expected, got, ctx } => {
                write!(f, "{ctx}: expected rank {expected}, got rank {got}")
            }
            TensorError::IndexOutOfRange { index, bound, ctx } => {
                write!(f, "{ctx}: index {index} out of range (bound {bound})")
            }
            TensorError::LengthMismatch { expected, got, ctx } => {
                write!(
                    f,
                    "{ctx}: buffer length {got} does not match shape element count {expected}"
                )
            }
            TensorError::NotAScalar { shape, ctx } => {
                write!(f, "{ctx}: expected a scalar tensor, got shape {shape}")
            }
            TensorError::Invalid { msg } => write!(f, "invalid tensor operation: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = TensorError::ShapeMismatch {
            lhs: Shape::new(vec![2, 3]),
            rhs: Shape::new(vec![4]),
            ctx: "add",
        };
        let s = e.to_string();
        assert!(s.contains("add"), "{s}");
        assert!(s.contains("[2, 3]"), "{s}");

        let e = TensorError::invalid("boom");
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = TensorError::RankMismatch {
            expected: 2,
            got: 1,
            ctx: "matmul",
        };
        let b = TensorError::RankMismatch {
            expected: 2,
            got: 1,
            ctx: "matmul",
        };
        assert_eq!(a, b);
    }
}
