//! Dense tensor substrate for the `rdg` recursive-dataflow framework.
//!
//! This crate provides the numerical foundation that the dataflow executor
//! (`rdg-exec`) and the neural-network layers (`rdg-nn`) are built on:
//!
//! * [`Tensor`] — an immutable, reference-counted, row-major dense tensor of
//!   `f32` or `i32` elements with copy-on-write mutation
//!   ([`Tensor::make_f32_mut`]), which lets functional updates (e.g. row
//!   scatter in the iterative baseline) run in place whenever the buffer is
//!   uniquely owned.
//! * [`Shape`] and [`DType`] — lightweight shape/dtype metadata.
//! * [`ops`] — the kernel library: matrix multiplication, elementwise
//!   arithmetic, activations and their gradients, softmax/cross-entropy,
//!   gather/scatter, concatenation/slicing, and the bilinear tensor product
//!   used by the RNTN model.
//!
//! All kernels are pure safe Rust (no BLAS); the matmul kernel uses a
//! cache-friendly `i-k-j` loop ordering that autovectorizes well.
//!
//! Everything is fallible: kernels return [`TensorError`] on shape or dtype
//! mismatches rather than panicking, so the executor can surface graph-level
//! errors with context.

pub mod error;
pub mod ops;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::{Buffer, DType, Tensor};

/// Convenient result alias used throughout the tensor crate.
pub type Result<T> = std::result::Result<T, TensorError>;
