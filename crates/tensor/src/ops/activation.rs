//! Activation functions and their gradients.
//!
//! Gradients are expressed in terms of the *forward output* `y` wherever the
//! math allows (`tanh`, `sigmoid`, `relu`, `softmax`), which is what the
//! backprop cache stores; this halves cache traffic relative to keeping the
//! pre-activation input.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

fn map_f32(a: &Tensor, f: impl Fn(f32) -> f32) -> Result<Tensor> {
    let av = a.f32s()?;
    Tensor::from_f32(a.shape().clone(), av.iter().map(|&x| f(x)).collect())
}

/// Hyperbolic tangent, elementwise.
pub fn tanh(a: &Tensor) -> Result<Tensor> {
    map_f32(a, f32::tanh)
}

/// Gradient of [`tanh`]: `dx = dy ⊙ (1 - y²)` given forward output `y`.
pub fn tanh_grad(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    same_shape(y, dy, "tanh_grad")?;
    let yv = y.f32s()?;
    let dv = dy.f32s()?;
    Tensor::from_f32(
        y.shape().clone(),
        yv.iter()
            .zip(dv.iter())
            .map(|(&yy, &dd)| dd * (1.0 - yy * yy))
            .collect(),
    )
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, elementwise.
pub fn sigmoid(a: &Tensor) -> Result<Tensor> {
    map_f32(a, |x| 1.0 / (1.0 + (-x).exp()))
}

/// Gradient of [`sigmoid`]: `dx = dy ⊙ y ⊙ (1 - y)` given forward output `y`.
pub fn sigmoid_grad(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    same_shape(y, dy, "sigmoid_grad")?;
    let yv = y.f32s()?;
    let dv = dy.f32s()?;
    Tensor::from_f32(
        y.shape().clone(),
        yv.iter()
            .zip(dv.iter())
            .map(|(&yy, &dd)| dd * yy * (1.0 - yy))
            .collect(),
    )
}

/// Rectified linear unit `max(x, 0)`, elementwise.
pub fn relu(a: &Tensor) -> Result<Tensor> {
    map_f32(a, |x| x.max(0.0))
}

/// Gradient of [`relu`]: `dx = dy ⊙ [y > 0]` given forward output `y`.
pub fn relu_grad(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    same_shape(y, dy, "relu_grad")?;
    let yv = y.f32s()?;
    let dv = dy.f32s()?;
    Tensor::from_f32(
        y.shape().clone(),
        yv.iter()
            .zip(dv.iter())
            .map(|(&yy, &dd)| if yy > 0.0 { dd } else { 0.0 })
            .collect(),
    )
}

fn rows_of<'t>(a: &'t Tensor, ctx: &'static str) -> Result<(usize, usize, &'t [f32])> {
    let (m, n) = a.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: a.rank(),
        ctx,
    })?;
    Ok((m, n, a.f32s()?))
}

/// Row-wise softmax over a `[m, n]` matrix (numerically stabilized).
pub fn softmax(a: &Tensor) -> Result<Tensor> {
    let (m, n, av) = rows_of(a, "softmax")?;
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        let row = &av[r * n..(r + 1) * n];
        let orow = &mut out[r * n..(r + 1) * n];
        let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for (o, &x) in orow.iter_mut().zip(row.iter()) {
            let e = (x - mx).exp();
            *o = e;
            denom += e;
        }
        for o in orow.iter_mut() {
            *o /= denom;
        }
    }
    Tensor::from_f32(a.shape().clone(), out)
}

/// Gradient of [`softmax`]: `dxᵣ = yᵣ ⊙ (dyᵣ - ⟨dyᵣ, yᵣ⟩)` per row `r`.
pub fn softmax_grad(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    same_shape(y, dy, "softmax_grad")?;
    let (m, n, yv) = rows_of(y, "softmax_grad")?;
    let dv = dy.f32s()?;
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        let yrow = &yv[r * n..(r + 1) * n];
        let drow = &dv[r * n..(r + 1) * n];
        let dot: f32 = yrow.iter().zip(drow.iter()).map(|(&a, &b)| a * b).sum();
        let orow = &mut out[r * n..(r + 1) * n];
        for j in 0..n {
            orow[j] = yrow[j] * (drow[j] - dot);
        }
    }
    Tensor::from_f32(y.shape().clone(), out)
}

/// Row-wise log-softmax over a `[m, n]` matrix.
pub fn log_softmax(a: &Tensor) -> Result<Tensor> {
    let (m, n, av) = rows_of(a, "log_softmax")?;
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        let row = &av[r * n..(r + 1) * n];
        let mx = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse: f32 = row.iter().map(|&x| (x - mx).exp()).sum::<f32>().ln() + mx;
        let orow = &mut out[r * n..(r + 1) * n];
        for j in 0..n {
            orow[j] = row[j] - lse;
        }
    }
    Tensor::from_f32(a.shape().clone(), out)
}

/// Gradient of [`log_softmax`]: `dxᵣ = dyᵣ - exp(yᵣ) · Σ dyᵣ` per row.
pub fn log_softmax_grad(y: &Tensor, dy: &Tensor) -> Result<Tensor> {
    same_shape(y, dy, "log_softmax_grad")?;
    let (m, n, yv) = rows_of(y, "log_softmax_grad")?;
    let dv = dy.f32s()?;
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        let yrow = &yv[r * n..(r + 1) * n];
        let drow = &dv[r * n..(r + 1) * n];
        let sum: f32 = drow.iter().sum();
        let orow = &mut out[r * n..(r + 1) * n];
        for j in 0..n {
            orow[j] = drow[j] - yrow[j].exp() * sum;
        }
    }
    Tensor::from_f32(y.shape().clone(), out)
}

fn same_shape(a: &Tensor, b: &Tensor, ctx: &'static str) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(f: impl Fn(f32) -> f32, x: f32) -> f32 {
        let h = 1e-3;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    #[test]
    fn tanh_matches_std() {
        let x = Tensor::from_f32([3], vec![-1.0, 0.0, 2.0]).unwrap();
        let y = tanh(&x).unwrap();
        assert!((y.f32s().unwrap()[2] - 2.0f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn activation_grads_match_finite_differences() {
        for &x0 in &[-2.0f32, -0.5, 0.3, 1.7] {
            let x = Tensor::scalar_f32(x0);
            let dy = Tensor::scalar_f32(1.0);

            let y = tanh(&x).unwrap();
            let g = tanh_grad(&y, &dy).unwrap().as_f32_scalar().unwrap();
            assert!(
                (g - finite_diff(f32::tanh, x0)).abs() < 1e-3,
                "tanh at {x0}"
            );

            let y = sigmoid(&x).unwrap();
            let g = sigmoid_grad(&y, &dy).unwrap().as_f32_scalar().unwrap();
            let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
            assert!((g - finite_diff(sig, x0)).abs() < 1e-3, "sigmoid at {x0}");
        }
    }

    #[test]
    fn relu_and_grad() {
        let x = Tensor::from_f32([4], vec![-1.0, 0.0, 0.5, 3.0]).unwrap();
        let y = relu(&x).unwrap();
        assert_eq!(y.f32s().unwrap(), &[0.0, 0.0, 0.5, 3.0]);
        let dy = Tensor::ones([4]);
        let dx = relu_grad(&y, &dy).unwrap();
        assert_eq!(dx.f32s().unwrap(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_f32([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]).unwrap();
        let y = softmax(&x).unwrap();
        let yv = y.f32s().unwrap();
        for r in 0..2 {
            let s: f32 = yv[r * 3..(r + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
        // Large logits must not overflow.
        assert!(yv.iter().all(|v| v.is_finite()));
        assert!((yv[5] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let x = Tensor::from_f32([1, 4], vec![0.5, -1.0, 2.0, 0.0]).unwrap();
        let a = log_softmax(&x).unwrap();
        let b = softmax(&x).unwrap();
        for (la, pb) in a.f32s().unwrap().iter().zip(b.f32s().unwrap()) {
            assert!((la.exp() - pb).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_grad_matches_finite_differences() {
        let x0 = vec![0.3f32, -0.7, 1.1];
        let x = Tensor::from_f32([1, 3], x0.clone()).unwrap();
        let y = softmax(&x).unwrap();
        // Upstream gradient picks out component 1.
        let dy = Tensor::from_f32([1, 3], vec![0.0, 1.0, 0.0]).unwrap();
        let dx = softmax_grad(&y, &dy).unwrap();
        let h = 1e-3f32;
        for j in 0..3 {
            let mut xp = x0.clone();
            xp[j] += h;
            let mut xm = x0.clone();
            xm[j] -= h;
            let yp = softmax(&Tensor::from_f32([1, 3], xp).unwrap()).unwrap();
            let ym = softmax(&Tensor::from_f32([1, 3], xm).unwrap()).unwrap();
            let fd = (yp.f32s().unwrap()[1] - ym.f32s().unwrap()[1]) / (2.0 * h);
            assert!((dx.f32s().unwrap()[j] - fd).abs() < 1e-3, "component {j}");
        }
    }

    #[test]
    fn grads_require_matching_shapes() {
        let y = Tensor::zeros([2]);
        let dy = Tensor::zeros([3]);
        assert!(tanh_grad(&y, &dy).is_err());
        assert!(sigmoid_grad(&y, &dy).is_err());
    }
}
