//! The bilinear tensor product used by the RNTN model (Socher et al., 2013).
//!
//! Forward: given `x: [b, m]` and a third-order tensor `v: [k, m, m]`,
//! `out[b, t] = x_b · V_t · x_bᵀ` — each output slice `t` is a full bilinear
//! form over the concatenated child vector. This is what makes RNTN an order
//! of magnitude heavier per node than TreeRNN, which the paper leans on when
//! explaining why TreeRNN gains more from parallelization (§6.2).

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

fn check(v: &Tensor) -> Result<(usize, usize)> {
    if v.rank() != 3 {
        return Err(TensorError::RankMismatch {
            expected: 3,
            got: v.rank(),
            ctx: "bilinear v",
        });
    }
    let d = v.shape().dims();
    if d[1] != d[2] {
        return Err(TensorError::invalid(format!(
            "bilinear tensor must have square slices, got {:?}",
            d
        )));
    }
    Ok((d[0], d[1]))
}

/// `out[b, t] = Σ_{i,j} x[b, i] · v[t, i, j] · x[b, j]`.
pub fn bilinear(x: &Tensor, v: &Tensor) -> Result<Tensor> {
    let (k, m) = check(v)?;
    let (b, mx) = x.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: x.rank(),
        ctx: "bilinear x",
    })?;
    if mx != m {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().clone(),
            rhs: v.shape().clone(),
            ctx: "bilinear",
        });
    }
    let xv = x.f32s()?;
    let vv = v.f32s()?;
    let mut out = vec![0.0f32; b * k];
    for bi in 0..b {
        let xrow = &xv[bi * m..(bi + 1) * m];
        for t in 0..k {
            let slice = &vv[t * m * m..(t + 1) * m * m];
            // acc = x · V_t · xᵀ; compute y_i = ⟨V_t[i, :], x⟩ then ⟨x, y⟩.
            let mut acc = 0.0f32;
            for i in 0..m {
                let xi = xrow[i];
                if xi == 0.0 {
                    continue;
                }
                let vrow = &slice[i * m..(i + 1) * m];
                let mut dot = 0.0f32;
                for j in 0..m {
                    dot += vrow[j] * xrow[j];
                }
                acc += xi * dot;
            }
            out[bi * k + t] = acc;
        }
    }
    Tensor::from_f32([b, k], out)
}

/// Gradient of [`bilinear`] w.r.t. `x`:
/// `dx[b, :] = Σ_t dy[b, t] · (V_t + V_tᵀ) · x_bᵀ`.
pub fn bilinear_grad_x(x: &Tensor, v: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let (k, m) = check(v)?;
    let (b, _) = x.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: x.rank(),
        ctx: "bilinear_grad_x",
    })?;
    let xv = x.f32s()?;
    let vv = v.f32s()?;
    let dv = dy.f32s()?;
    if dy.numel() != b * k {
        return Err(TensorError::ShapeMismatch {
            lhs: dy.shape().clone(),
            rhs: v.shape().clone(),
            ctx: "bilinear_grad_x dy",
        });
    }
    let mut out = vec![0.0f32; b * m];
    for bi in 0..b {
        let xrow = &xv[bi * m..(bi + 1) * m];
        let orow = &mut out[bi * m..(bi + 1) * m];
        for t in 0..k {
            let g = dv[bi * k + t];
            if g == 0.0 {
                continue;
            }
            let slice = &vv[t * m * m..(t + 1) * m * m];
            for i in 0..m {
                let vrow = &slice[i * m..(i + 1) * m];
                let xi = xrow[i];
                let mut row_dot = 0.0f32;
                for j in 0..m {
                    // (V_t · x)_i contributes to dx_i; (V_tᵀ · x)_j = column dot.
                    row_dot += vrow[j] * xrow[j];
                    orow[j] += g * xi * vrow[j]; // V_tᵀ term
                }
                orow[i] += g * row_dot; // V_t term
            }
        }
    }
    Tensor::from_f32([b, m], out)
}

/// Gradient of [`bilinear`] w.r.t. `v`:
/// `dV[t, i, j] = Σ_b dy[b, t] · x[b, i] · x[b, j]`.
pub fn bilinear_grad_v(x: &Tensor, v_like: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let (k, m) = check(v_like)?;
    let (b, mx) = x.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: x.rank(),
        ctx: "bilinear_grad_v",
    })?;
    if mx != m || dy.numel() != b * k {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().clone(),
            rhs: dy.shape().clone(),
            ctx: "bilinear_grad_v",
        });
    }
    let xv = x.f32s()?;
    let dv = dy.f32s()?;
    let mut out = vec![0.0f32; k * m * m];
    for bi in 0..b {
        let xrow = &xv[bi * m..(bi + 1) * m];
        for t in 0..k {
            let g = dv[bi * k + t];
            if g == 0.0 {
                continue;
            }
            let slice = &mut out[t * m * m..(t + 1) * m * m];
            for i in 0..m {
                let gxi = g * xrow[i];
                if gxi == 0.0 {
                    continue;
                }
                let srow = &mut slice[i * m..(i + 1) * m];
                for j in 0..m {
                    srow[j] += gxi * xrow[j];
                }
            }
        }
    }
    Tensor::from_f32(v_like.shape().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_case_is_quadratic_form() {
        // m = 1, k = 1: out = v · x².
        let x = Tensor::from_f32([1, 1], vec![3.0]).unwrap();
        let v = Tensor::from_f32([1, 1, 1], vec![2.0]).unwrap();
        let y = bilinear(&x, &v).unwrap();
        assert_eq!(y.f32s().unwrap(), &[18.0]);
    }

    #[test]
    fn known_2d_case() {
        // x = [1, 2], V_0 = [[1, 0], [0, 1]] → xᵀVx = 1 + 4 = 5
        // V_1 = [[0, 1], [0, 0]] → x V x = x0*x1 = 2
        let x = Tensor::from_f32([1, 2], vec![1.0, 2.0]).unwrap();
        let v = Tensor::from_f32([2, 2, 2], vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, 0.0]).unwrap();
        let y = bilinear(&x, &v).unwrap();
        assert_eq!(y.f32s().unwrap(), &[5.0, 2.0]);
    }

    #[test]
    fn grads_match_finite_differences() {
        let m = 3;
        let k = 2;
        let xs: Vec<f32> = (0..m).map(|i| 0.3 * i as f32 - 0.2).collect();
        let vs: Vec<f32> = (0..k * m * m)
            .map(|i| ((i * 7 % 11) as f32 - 5.0) * 0.1)
            .collect();
        let x = Tensor::from_f32([1, m], xs.clone()).unwrap();
        let v = Tensor::from_f32([k, m, m], vs.clone()).unwrap();
        let dy = Tensor::from_f32([1, k], vec![1.0, -0.5]).unwrap();
        let loss = |xs: &[f32], vs: &[f32]| -> f32 {
            let x = Tensor::from_f32([1, m], xs.to_vec()).unwrap();
            let v = Tensor::from_f32([k, m, m], vs.to_vec()).unwrap();
            let y = bilinear(&x, &v).unwrap();
            // ⟨dy, y⟩ as scalar objective.
            y.f32s().unwrap()[0] - 0.5 * y.f32s().unwrap()[1]
        };
        let h = 1e-3f32;

        let gx = bilinear_grad_x(&x, &v, &dy).unwrap();
        for i in 0..m {
            let mut xp = xs.clone();
            xp[i] += h;
            let mut xm = xs.clone();
            xm[i] -= h;
            let fd = (loss(&xp, &vs) - loss(&xm, &vs)) / (2.0 * h);
            assert!((gx.f32s().unwrap()[i] - fd).abs() < 1e-2, "dx[{i}]");
        }

        let gv = bilinear_grad_v(&x, &v, &dy).unwrap();
        for i in 0..k * m * m {
            let mut vp = vs.clone();
            vp[i] += h;
            let mut vm = vs.clone();
            vm[i] -= h;
            let fd = (loss(&xs, &vp) - loss(&xs, &vm)) / (2.0 * h);
            assert!((gv.f32s().unwrap()[i] - fd).abs() < 1e-2, "dv[{i}]");
        }
    }

    #[test]
    fn batched_rows_are_independent() {
        let x = Tensor::from_f32([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let v = Tensor::from_f32([1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = bilinear(&x, &v).unwrap();
        assert_eq!(y.shape().dims(), &[2, 1]);
        assert_eq!(y.f32s().unwrap(), &[1.0, 4.0]);
    }

    #[test]
    fn shape_validation() {
        let x = Tensor::zeros([1, 2]);
        let v_bad_rank = Tensor::zeros([2, 2]);
        assert!(bilinear(&x, &v_bad_rank).is_err());
        let v_not_square = Tensor::zeros([1, 2, 3]);
        assert!(bilinear(&x, &v_not_square).is_err());
        let v_wrong_dim = Tensor::zeros([1, 3, 3]);
        assert!(bilinear(&x, &v_wrong_dim).is_err());
    }
}
