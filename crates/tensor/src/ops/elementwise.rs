//! Elementwise arithmetic kernels.
//!
//! Graph-level `Add`/`Sub`/`Mul`/`Div` require identical shapes so gradients
//! are shape-preserving; the bias and scalar broadcasts are separate,
//! explicit kernels (`add_bias`, `scale`, `add_const`, `scalar_mul`) with
//! their own gradient rules. The raw kernels here additionally accept
//! scalar-like operands for internal callers (e.g. the folding engine).

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Applies `f` elementwise over two same-shape (or scalar-broadcast) tensors.
fn zip_f32(
    a: &Tensor,
    b: &Tensor,
    ctx: &'static str,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor> {
    let av = a.f32s()?;
    let bv = b.f32s()?;
    if a.shape() == b.shape() {
        let out: Vec<f32> = av.iter().zip(bv.iter()).map(|(&x, &y)| f(x, y)).collect();
        return Tensor::from_f32(a.shape().clone(), out);
    }
    if b.shape().is_scalar_like() {
        let s = bv[0];
        let out: Vec<f32> = av.iter().map(|&x| f(x, s)).collect();
        return Tensor::from_f32(a.shape().clone(), out);
    }
    if a.shape().is_scalar_like() {
        let s = av[0];
        let out: Vec<f32> = bv.iter().map(|&y| f(s, y)).collect();
        return Tensor::from_f32(b.shape().clone(), out);
    }
    Err(TensorError::ShapeMismatch {
        lhs: a.shape().clone(),
        rhs: b.shape().clone(),
        ctx,
    })
}

/// Elementwise addition (`a + b`); shapes must match or one side be scalar.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_f32(a, b, "add", |x, y| x + y)
}

/// Elementwise subtraction (`a - b`).
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_f32(a, b, "sub", |x, y| x - y)
}

/// Elementwise (Hadamard) product.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_f32(a, b, "mul", |x, y| x * y)
}

/// Elementwise division.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_f32(a, b, "div", |x, y| x / y)
}

/// Elementwise negation.
pub fn neg(a: &Tensor) -> Result<Tensor> {
    let av = a.f32s()?;
    Tensor::from_f32(a.shape().clone(), av.iter().map(|&x| -x).collect())
}

/// Multiplies every element by a compile-time constant.
pub fn scale(a: &Tensor, factor: f32) -> Result<Tensor> {
    let av = a.f32s()?;
    Tensor::from_f32(a.shape().clone(), av.iter().map(|&x| x * factor).collect())
}

/// Adds a compile-time constant to every element.
pub fn add_const(a: &Tensor, c: f32) -> Result<Tensor> {
    let av = a.f32s()?;
    Tensor::from_f32(a.shape().clone(), av.iter().map(|&x| x + c).collect())
}

/// Multiplies a tensor by a *runtime* scalar tensor (`out = a * s`).
///
/// Unlike [`scale`], the factor is a graph value, so gradients flow into it:
/// `da = dy * s`, `ds = Σ (dy ⊙ a)`.
pub fn scalar_mul(a: &Tensor, s: &Tensor) -> Result<Tensor> {
    if !s.shape().is_scalar_like() {
        return Err(TensorError::NotAScalar {
            shape: s.shape().clone(),
            ctx: "scalar_mul",
        });
    }
    scale(a, s.as_f32_scalar()?)
}

/// Adds a rank-1 bias `[n]` (or `[1, n]`) to every row of `a: [m, n]`.
pub fn add_bias(a: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let (m, n) = a.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: a.rank(),
        ctx: "add_bias",
    })?;
    let bn = bias.numel();
    if bn != n {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: bias.shape().clone(),
            ctx: "add_bias",
        });
    }
    let av = a.f32s()?;
    let bv = bias.f32s()?;
    let mut out = Vec::with_capacity(m * n);
    for r in 0..m {
        let row = &av[r * n..(r + 1) * n];
        out.extend(row.iter().zip(bv.iter()).map(|(&x, &b)| x + b));
    }
    Tensor::from_f32(a.shape().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_f32([n], v).unwrap()
    }

    #[test]
    fn add_same_shape() {
        let r = add(&t(vec![1.0, 2.0]), &t(vec![3.0, 4.0])).unwrap();
        assert_eq!(r.f32s().unwrap(), &[4.0, 6.0]);
    }

    #[test]
    fn add_scalar_broadcast_both_sides() {
        let s = Tensor::scalar_f32(10.0);
        let v = t(vec![1.0, 2.0]);
        assert_eq!(add(&v, &s).unwrap().f32s().unwrap(), &[11.0, 12.0]);
        assert_eq!(add(&s, &v).unwrap().f32s().unwrap(), &[11.0, 12.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = t(vec![1.0, 2.0]);
        let b = t(vec![1.0, 2.0, 3.0]);
        assert!(add(&a, &b).is_err());
        assert!(mul(&a, &b).is_err());
    }

    #[test]
    fn sub_mul_div_basic() {
        let a = t(vec![4.0, 9.0]);
        let b = t(vec![2.0, 3.0]);
        assert_eq!(sub(&a, &b).unwrap().f32s().unwrap(), &[2.0, 6.0]);
        assert_eq!(mul(&a, &b).unwrap().f32s().unwrap(), &[8.0, 27.0]);
        assert_eq!(div(&a, &b).unwrap().f32s().unwrap(), &[2.0, 3.0]);
    }

    #[test]
    fn neg_scale_add_const() {
        let a = t(vec![1.0, -2.0]);
        assert_eq!(neg(&a).unwrap().f32s().unwrap(), &[-1.0, 2.0]);
        assert_eq!(scale(&a, 3.0).unwrap().f32s().unwrap(), &[3.0, -6.0]);
        assert_eq!(add_const(&a, 1.0).unwrap().f32s().unwrap(), &[2.0, -1.0]);
    }

    #[test]
    fn scalar_mul_requires_scalar() {
        let a = t(vec![1.0, 2.0]);
        let s = Tensor::scalar_f32(2.5);
        assert_eq!(scalar_mul(&a, &s).unwrap().f32s().unwrap(), &[2.5, 5.0]);
        assert!(scalar_mul(&a, &a).is_err());
    }

    #[test]
    fn add_bias_broadcasts_rows() {
        let a = Tensor::from_f32([2, 3], vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]).unwrap();
        let b = t(vec![1.0, 2.0, 3.0]);
        let r = add_bias(&a, &b).unwrap();
        assert_eq!(r.f32s().unwrap(), &[1.0, 2.0, 3.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn add_bias_checks_width() {
        let a = Tensor::zeros([2, 3]);
        let b = t(vec![1.0, 2.0]);
        assert!(add_bias(&a, &b).is_err());
    }

    #[test]
    fn integer_tensors_are_rejected() {
        let i = Tensor::scalar_i32(1);
        let f = Tensor::scalar_f32(1.0);
        assert!(add(&i, &f).is_err());
        assert!(neg(&i).is_err());
    }
}
