//! Row gather/scatter kernels and functional row updates.
//!
//! [`set_row`] is the workhorse of the *iterative* baseline (the paper's
//! Figure 1): the per-node state matrix is updated functionally, and the
//! copy-on-write buffer makes the update in place whenever the executor has
//! released all other references — the moral equivalent of TensorFlow's
//! `TensorArray` without a dedicated type.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

fn as_rows<'t>(t: &'t Tensor, ctx: &'static str) -> Result<(usize, usize, &'t [f32])> {
    let (m, n) = t.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: t.rank(),
        ctx,
    })?;
    Ok((m, n, t.f32s()?))
}

/// Gathers rows of `table: [v, d]` selected by `ids: i32[m]` into `[m, d]`.
pub fn gather_rows(table: &Tensor, ids: &Tensor) -> Result<Tensor> {
    let (v, d, tv) = as_rows(table, "gather_rows table")?;
    let idv = ids.i32s()?;
    let mut out = Vec::with_capacity(idv.len() * d);
    for &id in idv {
        if id < 0 || id as usize >= v {
            return Err(TensorError::IndexOutOfRange {
                index: id as i64,
                bound: v,
                ctx: "gather_rows",
            });
        }
        let r = id as usize;
        out.extend_from_slice(&tv[r * d..(r + 1) * d]);
    }
    Tensor::from_f32([idv.len(), d], out)
}

/// Scatter-add of `src: [m, d]` rows into a zero tensor shaped like
/// `table_like: [v, d]` — the gradient of [`gather_rows`] w.r.t. the table.
///
/// Duplicate ids accumulate, matching the sum of per-use gradients.
pub fn scatter_rows_like(table_like: &Tensor, ids: &Tensor, src: &Tensor) -> Result<Tensor> {
    let (v, d) = table_like
        .shape()
        .as_matrix()
        .ok_or(TensorError::RankMismatch {
            expected: 2,
            got: table_like.rank(),
            ctx: "scatter_rows_like",
        })?;
    let mut out = Tensor::zeros([v, d]);
    scatter_add_rows(&mut out, ids, src)?;
    Ok(out)
}

/// Adds `src: [m, d]` rows into `dst: [v, d]` at positions `ids: i32[m]`.
///
/// `dst` is modified through copy-on-write; pass a uniquely-owned tensor
/// (e.g. a gradient accumulator) for in-place accumulation.
pub fn scatter_add_rows(dst: &mut Tensor, ids: &Tensor, src: &Tensor) -> Result<()> {
    let (v, d) = dst.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: dst.rank(),
        ctx: "scatter_add_rows dst",
    })?;
    let (m, ds, sv) = as_rows(src, "scatter_add_rows src")?;
    if ds != d {
        return Err(TensorError::ShapeMismatch {
            lhs: dst.shape().clone(),
            rhs: src.shape().clone(),
            ctx: "scatter_add_rows",
        });
    }
    let idv: Vec<i32> = ids.i32s()?.to_vec();
    if idv.len() != m {
        return Err(TensorError::LengthMismatch {
            expected: m,
            got: idv.len(),
            ctx: "scatter_add_rows ids",
        });
    }
    let dv = dst.make_f32_mut()?;
    for (r, &id) in idv.iter().enumerate() {
        if id < 0 || id as usize >= v {
            return Err(TensorError::IndexOutOfRange {
                index: id as i64,
                bound: v,
                ctx: "scatter_add_rows",
            });
        }
        let t = id as usize;
        let srow = &sv[r * d..(r + 1) * d];
        let drow = &mut dv[t * d..(t + 1) * d];
        for j in 0..d {
            drow[j] += srow[j];
        }
    }
    Ok(())
}

/// Extracts row `i` of `t: [m, d]` as `[1, d]`; `i` is a scalar `i32` tensor.
pub fn get_row(t: &Tensor, i: &Tensor) -> Result<Tensor> {
    let (m, d, tv) = as_rows(t, "get_row")?;
    let idx = i.as_i32_scalar()?;
    if idx < 0 || idx as usize >= m {
        return Err(TensorError::IndexOutOfRange {
            index: idx as i64,
            bound: m,
            ctx: "get_row",
        });
    }
    let r = idx as usize;
    Tensor::from_f32([1, d], tv[r * d..(r + 1) * d].to_vec())
}

/// Functionally replaces row `i` of `t: [m, d]` with `row: [d] / [1, d]`.
///
/// Consumes `t` by value: when the caller holds the only reference, the
/// update happens in place (O(d)); otherwise the buffer is copied first
/// (O(m·d)). The executor's consumer-refcounting is what makes the fast path
/// common in long iterative chains.
pub fn set_row(mut t: Tensor, i: &Tensor, row: &Tensor) -> Result<Tensor> {
    let (m, d) = t.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: t.rank(),
        ctx: "set_row",
    })?;
    if row.numel() != d {
        return Err(TensorError::ShapeMismatch {
            lhs: t.shape().clone(),
            rhs: row.shape().clone(),
            ctx: "set_row",
        });
    }
    let idx = i.as_i32_scalar()?;
    if idx < 0 || idx as usize >= m {
        return Err(TensorError::IndexOutOfRange {
            index: idx as i64,
            bound: m,
            ctx: "set_row",
        });
    }
    let r = idx as usize;
    let rv: Vec<f32> = row.f32s()?.to_vec();
    let tv = t.make_f32_mut()?;
    tv[r * d..(r + 1) * d].copy_from_slice(&rv);
    Ok(t)
}

/// One-hot encodes `ids: i32[m]` into `[m, classes]` of `f32`.
pub fn onehot(ids: &Tensor, classes: usize) -> Result<Tensor> {
    let idv = ids.i32s()?;
    let mut out = vec![0.0f32; idv.len() * classes];
    for (r, &id) in idv.iter().enumerate() {
        if id < 0 || id as usize >= classes {
            return Err(TensorError::IndexOutOfRange {
                index: id as i64,
                bound: classes,
                ctx: "onehot",
            });
        }
        out[r * classes + id as usize] = 1.0;
    }
    Tensor::from_f32([idv.len(), classes], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Tensor {
        Tensor::from_f32([3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn gather_selects_rows() {
        let ids = Tensor::from_i32([2], vec![2, 0]).unwrap();
        let g = gather_rows(&table(), &ids).unwrap();
        assert_eq!(g.shape().dims(), &[2, 2]);
        assert_eq!(g.f32s().unwrap(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn gather_bounds_checked() {
        let ids = Tensor::from_i32([1], vec![3]).unwrap();
        assert!(gather_rows(&table(), &ids).is_err());
        let ids = Tensor::from_i32([1], vec![-1]).unwrap();
        assert!(gather_rows(&table(), &ids).is_err());
    }

    #[test]
    fn scatter_accumulates_duplicates() {
        let like = Tensor::zeros([3, 2]);
        let ids = Tensor::from_i32([3], vec![1, 1, 0]).unwrap();
        let src = Tensor::from_f32([3, 2], vec![1.0, 1.0, 2.0, 2.0, 5.0, 5.0]).unwrap();
        let out = scatter_rows_like(&like, &ids, &src).unwrap();
        assert_eq!(out.f32s().unwrap(), &[5.0, 5.0, 3.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn gather_scatter_roundtrip_is_identity_for_unique_ids() {
        let t = table();
        let ids = Tensor::from_i32([3], vec![0, 1, 2]).unwrap();
        let g = gather_rows(&t, &ids).unwrap();
        let s = scatter_rows_like(&t, &ids, &g).unwrap();
        assert!(s.allclose(&t, 1e-6));
    }

    #[test]
    fn get_and_set_row() {
        let t = table();
        let i = Tensor::scalar_i32(1);
        let r = get_row(&t, &i).unwrap();
        assert_eq!(r.f32s().unwrap(), &[3.0, 4.0]);

        let new_row = Tensor::from_f32([2], vec![9.0, 9.0]).unwrap();
        let t2 = set_row(t.clone(), &i, &new_row).unwrap();
        assert_eq!(t2.f32s().unwrap(), &[1.0, 2.0, 9.0, 9.0, 5.0, 6.0]);
        // Original untouched (copy-on-write since `t` was cloned).
        assert_eq!(t.f32s().unwrap()[2], 3.0);
    }

    #[test]
    fn set_row_in_place_when_unique() {
        let t = table();
        let ptr = t.f32s().unwrap().as_ptr();
        let i = Tensor::scalar_i32(0);
        let row = Tensor::from_f32([2], vec![0.0, 0.0]).unwrap();
        let t2 = set_row(t, &i, &row).unwrap(); // `t` moved: unique
        assert_eq!(
            t2.f32s().unwrap().as_ptr(),
            ptr,
            "unique set_row must be in place"
        );
    }

    #[test]
    fn set_row_bounds_and_shape_checked() {
        let i_bad = Tensor::scalar_i32(5);
        let row = Tensor::from_f32([2], vec![0.0, 0.0]).unwrap();
        assert!(set_row(table(), &i_bad, &row).is_err());
        let wide = Tensor::from_f32([3], vec![0.0; 3]).unwrap();
        assert!(set_row(table(), &Tensor::scalar_i32(0), &wide).is_err());
    }

    #[test]
    fn onehot_encodes() {
        let ids = Tensor::from_i32([2], vec![0, 2]).unwrap();
        let o = onehot(&ids, 3).unwrap();
        assert_eq!(o.f32s().unwrap(), &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let bad = Tensor::from_i32([1], vec![3]).unwrap();
        assert!(onehot(&bad, 3).is_err());
    }
}
