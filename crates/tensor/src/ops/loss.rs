//! Fused softmax cross-entropy with integer labels.

use crate::error::TensorError;
use crate::ops::activation::log_softmax;
use crate::tensor::Tensor;
use crate::Result;

/// Softmax cross-entropy of `logits: [m, c]` against labels `i32[m]`.
///
/// Returns the per-row loss `[m]`. The fused form is numerically stable for
/// large logits (it never exponentiates before subtracting the row max).
pub fn softmax_xent(logits: &Tensor, labels: &Tensor) -> Result<Tensor> {
    let (m, c) = logits
        .shape()
        .as_matrix()
        .ok_or(TensorError::RankMismatch {
            expected: 2,
            got: logits.rank(),
            ctx: "softmax_xent",
        })?;
    let lv = labels.i32s()?;
    if lv.len() != m {
        return Err(TensorError::LengthMismatch {
            expected: m,
            got: lv.len(),
            ctx: "softmax_xent labels",
        });
    }
    let lsm = log_softmax(logits)?;
    let lsv = lsm.f32s()?;
    let mut out = Vec::with_capacity(m);
    for (r, &lab) in lv.iter().enumerate() {
        if lab < 0 || lab as usize >= c {
            return Err(TensorError::IndexOutOfRange {
                index: lab as i64,
                bound: c,
                ctx: "softmax_xent",
            });
        }
        out.push(-lsv[r * c + lab as usize]);
    }
    Tensor::from_f32([m], out)
}

/// Gradient of [`softmax_xent`] w.r.t. the logits.
///
/// `d_logits[r] = dy[r] · (softmax(logits)[r] - onehot(labels)[r])`.
/// Recomputes the softmax from the cached forward logits — cheap relative to
/// caching the probability matrix.
pub fn softmax_xent_grad(logits: &Tensor, labels: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let (m, c) = logits
        .shape()
        .as_matrix()
        .ok_or(TensorError::RankMismatch {
            expected: 2,
            got: logits.rank(),
            ctx: "softmax_xent_grad",
        })?;
    let lv = labels.i32s()?;
    let dv = dy.f32s()?;
    if lv.len() != m || dv.len() != m {
        return Err(TensorError::LengthMismatch {
            expected: m,
            got: lv.len().min(dv.len()),
            ctx: "softmax_xent_grad",
        });
    }
    let probs = crate::ops::activation::softmax(logits)?;
    let pv = probs.f32s()?;
    let mut out = vec![0.0f32; m * c];
    for r in 0..m {
        let lab = lv[r];
        if lab < 0 || lab as usize >= c {
            return Err(TensorError::IndexOutOfRange {
                index: lab as i64,
                bound: c,
                ctx: "softmax_xent_grad",
            });
        }
        let g = dv[r];
        let prow = &pv[r * c..(r + 1) * c];
        let orow = &mut out[r * c..(r + 1) * c];
        for j in 0..c {
            orow[j] = g * prow[j];
        }
        orow[lab as usize] -= g;
    }
    Tensor::from_f32([m, c], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros([2, 4]);
        let labels = Tensor::from_i32([2], vec![0, 3]).unwrap();
        let loss = softmax_xent(&logits, &labels).unwrap();
        for &l in loss.f32s().unwrap() {
            assert!((l - (4.0f32).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_f32([1, 3], vec![10.0, -10.0, -10.0]).unwrap();
        let labels = Tensor::from_i32([1], vec![0]).unwrap();
        let loss = softmax_xent(&logits, &labels).unwrap();
        assert!(loss.f32s().unwrap()[0] < 1e-3);
        // Wrong label: high loss.
        let wrong = Tensor::from_i32([1], vec![1]).unwrap();
        assert!(softmax_xent(&logits, &wrong).unwrap().f32s().unwrap()[0] > 10.0);
    }

    #[test]
    fn grad_matches_finite_differences() {
        let x0 = vec![0.2f32, -0.4, 1.0];
        let labels = Tensor::from_i32([1], vec![2]).unwrap();
        let dy = Tensor::from_f32([1], vec![1.0]).unwrap();
        let logits = Tensor::from_f32([1, 3], x0.clone()).unwrap();
        let g = softmax_xent_grad(&logits, &labels, &dy).unwrap();
        let h = 1e-3f32;
        for j in 0..3 {
            let mut xp = x0.clone();
            xp[j] += h;
            let mut xm = x0.clone();
            xm[j] -= h;
            let lp = softmax_xent(&Tensor::from_f32([1, 3], xp).unwrap(), &labels).unwrap();
            let lm = softmax_xent(&Tensor::from_f32([1, 3], xm).unwrap(), &labels).unwrap();
            let fd = (lp.f32s().unwrap()[0] - lm.f32s().unwrap()[0]) / (2.0 * h);
            assert!((g.f32s().unwrap()[j] - fd).abs() < 1e-3, "logit {j}");
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // softmax - onehot always sums to zero per row.
        let logits = Tensor::from_f32([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let labels = Tensor::from_i32([2], vec![1, 0]).unwrap();
        let dy = Tensor::ones([2]);
        let g = softmax_xent_grad(&logits, &labels, &dy).unwrap();
        let gv = g.f32s().unwrap();
        for r in 0..2 {
            let s: f32 = gv[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn label_bounds_checked() {
        let logits = Tensor::zeros([1, 3]);
        let bad = Tensor::from_i32([1], vec![3]).unwrap();
        assert!(softmax_xent(&logits, &bad).is_err());
        let dy = Tensor::ones([1]);
        assert!(softmax_xent_grad(&logits, &bad, &dy).is_err());
    }
}
