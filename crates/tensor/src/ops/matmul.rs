//! Dense matrix multiplication kernels.
//!
//! Three variants cover forward passes and both gradient products without
//! ever materializing a transpose:
//!
//! * [`matmul`]   — `C = A·B`   with `A: [m, k]`, `B: [k, n]`
//! * [`matmul_at`] — `C = Aᵀ·B` with `A: [k, m]`, `B: [k, n]`
//! * [`matmul_bt`] — `C = A·Bᵀ` with `A: [m, k]`, `B: [n, k]`
//!
//! `matmul` and `matmul_at` use the `i-k-j` loop order (unit-stride inner
//! loop over both output row and `B` row), which LLVM autovectorizes; this is
//! the hot kernel for all models. Rank-1 operands are treated as single rows.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

fn as_mat<'t>(t: &'t Tensor, ctx: &'static str) -> Result<(usize, usize, &'t [f32])> {
    let (r, c) = t.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: t.rank(),
        ctx,
    })?;
    Ok((r, c, t.f32s()?))
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka, av) = as_mat(a, "matmul lhs")?;
    let (kb, n, bv) = as_mat(b, "matmul rhs")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let crow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    Tensor::from_f32([m, n], out)
}

/// `C[m,n] = Aᵀ[m,k] · B[k,n]` where `A: [k, m]` (gradient w.r.t. weights).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m, av) = as_mat(a, "matmul_at lhs")?;
    let (kb, n, bv) = as_mat(b, "matmul_at rhs")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx: "matmul_at",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for kk in 0..ka {
        let arow = &av[kk * m..(kk + 1) * m];
        let brow = &bv[kk * n..(kk + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aki * brow[j];
            }
        }
    }
    Tensor::from_f32([m, n], out)
}

/// `C[m,n] = A[m,k] · Bᵀ[k,n]` where `B: [n, k]` (gradient w.r.t. inputs).
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka, av) = as_mat(a, "matmul_bt lhs")?;
    let (n, kb, bv) = as_mat(b, "matmul_bt rhs")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx: "matmul_bt",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let crow = &mut out[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &bv[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for kk in 0..ka {
                acc += arow[kk] * brow[kk];
            }
            crow[j] = acc;
        }
    }
    Tensor::from_f32([m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::shape_ops::transpose2d;

    fn m(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_f32([rows, cols], v).unwrap()
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = m(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.f32s().unwrap(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let id = m(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id).unwrap().f32s().unwrap(), a.f32s().unwrap());
        assert_eq!(matmul(&id, &a).unwrap().f32s().unwrap(), a.f32s().unwrap());
    }

    #[test]
    fn rank1_lhs_is_row_vector() {
        let x = Tensor::from_f32([3], vec![1.0, 0.0, 2.0]).unwrap();
        let w = m(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = matmul(&x, &w).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.f32s().unwrap(), &[11.0, 14.0]);
    }

    #[test]
    fn inner_dim_mismatch_errors() {
        let a = m(2, 3, vec![0.0; 6]);
        let b = m(2, 2, vec![0.0; 4]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_bt(&a, &a).is_err() || matmul_bt(&a, &a).is_ok()); // [2,3]x[2,3]ᵀ ok
        let c = m(3, 2, vec![0.0; 6]);
        assert!(matmul_bt(&a, &c).is_err());
        assert!(matmul_at(&a, &c).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = m(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, (0..12).map(|i| i as f32 * 0.5).collect());
        // matmul_at(a, b) == aᵀ·b
        let at = transpose2d(&a).unwrap();
        let want = matmul(&at, &b).unwrap();
        let got = matmul_at(&a, &b).unwrap();
        assert!(got.allclose(&want, 1e-6));

        // matmul_bt(x, y) == x·yᵀ
        let x = m(2, 3, vec![1.0, -1.0, 2.0, 0.5, 3.0, -2.0]);
        let y = m(4, 3, (0..12).map(|i| (i as f32) - 6.0).collect());
        let yt = transpose2d(&y).unwrap();
        let want = matmul(&x, &yt).unwrap();
        let got = matmul_bt(&x, &y).unwrap();
        assert!(got.allclose(&want, 1e-6));
    }

    #[test]
    fn rejects_high_rank() {
        let a = Tensor::zeros([2, 2, 2]);
        let b = Tensor::zeros([2, 2]);
        assert!(matmul(&a, &b).is_err());
    }
}
