//! Dense matrix multiplication kernels.
//!
//! Three variants cover forward passes and both gradient products without
//! ever materializing a transpose:
//!
//! * [`matmul`]   — `C = A·B`   with `A: [m, k]`, `B: [k, n]`
//! * [`matmul_at`] — `C = Aᵀ·B` with `A: [k, m]`, `B: [k, n]`
//! * [`matmul_bt`] — `C = A·Bᵀ` with `A: [m, k]`, `B: [n, k]`
//!
//! `matmul` and `matmul_at` use the `i-k-j` loop order (unit-stride inner
//! loop over both output row and `B` row), which LLVM autovectorizes; this is
//! the hot kernel for all models. Rank-1 operands are treated as single rows.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

fn as_mat<'t>(t: &'t Tensor, ctx: &'static str) -> Result<(usize, usize, &'t [f32])> {
    let (r, c) = t.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: t.rank(),
        ctx,
    })?;
    Ok((r, c, t.f32s()?))
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka, av) = as_mat(a, "matmul lhs")?;
    let (kb, n, bv) = as_mat(b, "matmul rhs")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    if m > 1 && m * n <= 12_288 {
        // Row-block (k-outer) order, 4-way unrolled over k: stream B
        // exactly once for the whole block, keep each 4-row B panel
        // L1-resident across the m output rows, and amortize the C-row
        // load/store over four fused multiply-adds. This is what makes
        // cross-request fusion pay — m stacked GEMVs against a weight
        // matrix larger than L2 read it once instead of m times, at a
        // quarter of the per-FMA store traffic. Gated on C fitting
        // comfortably in L1 (48 KB here), so large training batches keep
        // the i-k-j order below.
        //
        // Bit-exact vs the i-k-j order: each output element accumulates
        // its k terms in the same ascending order — the unrolled update
        // is left-associated, so every intermediate rounding matches the
        // one-k-at-a-time sequence — with the same zero skips (a block
        // containing a zero falls back to per-k updates). Only the
        // traversal across elements changes.
        let mut kk = 0usize;
        while kk + 4 <= ka {
            let (b0, b1, b2, b3) = (
                &bv[kk * n..(kk + 1) * n],
                &bv[(kk + 1) * n..(kk + 2) * n],
                &bv[(kk + 2) * n..(kk + 3) * n],
                &bv[(kk + 3) * n..(kk + 4) * n],
            );
            for i in 0..m {
                let a = &av[i * ka + kk..i * ka + kk + 4];
                let crow = &mut out[i * n..(i + 1) * n];
                if a[0] != 0.0 && a[1] != 0.0 && a[2] != 0.0 && a[3] != 0.0 {
                    let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
                    for j in 0..n {
                        crow[j] = crow[j] + a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                } else {
                    for (aik, brow) in [(a[0], b0), (a[1], b1), (a[2], b2), (a[3], b3)] {
                        if aik == 0.0 {
                            continue;
                        }
                        for j in 0..n {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
            kk += 4;
        }
        while kk < ka {
            let brow = &bv[kk * n..(kk + 1) * n];
            for i in 0..m {
                let aik = av[i * ka + kk];
                if aik == 0.0 {
                    continue;
                }
                let crow = &mut out[i * n..(i + 1) * n];
                for j in 0..n {
                    crow[j] += aik * brow[j];
                }
            }
            kk += 1;
        }
        return Tensor::from_f32([m, n], out);
    }
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let crow = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in arow.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let brow = &bv[kk * n..(kk + 1) * n];
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
    Tensor::from_f32([m, n], out)
}

/// `C[m,n] = Aᵀ[m,k] · B[k,n]` where `A: [k, m]` (gradient w.r.t. weights).
pub fn matmul_at(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m, av) = as_mat(a, "matmul_at lhs")?;
    let (kb, n, bv) = as_mat(b, "matmul_at rhs")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx: "matmul_at",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for kk in 0..ka {
        let arow = &av[kk * m..(kk + 1) * m];
        let brow = &bv[kk * n..(kk + 1) * n];
        for (i, &aki) in arow.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let crow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                crow[j] += aki * brow[j];
            }
        }
    }
    Tensor::from_f32([m, n], out)
}

/// `C[m,n] = A[m,k] · Bᵀ[k,n]` where `B: [n, k]` (gradient w.r.t. inputs).
pub fn matmul_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka, av) = as_mat(a, "matmul_bt lhs")?;
    let (n, kb, bv) = as_mat(b, "matmul_bt rhs")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx: "matmul_bt",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * ka..(i + 1) * ka];
        let crow = &mut out[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &bv[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for kk in 0..ka {
                acc += arow[kk] * brow[kk];
            }
            crow[j] = acc;
        }
    }
    Tensor::from_f32([m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::shape_ops::transpose2d;

    fn m(rows: usize, cols: usize, v: Vec<f32>) -> Tensor {
        Tensor::from_f32([rows, cols], v).unwrap()
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = m(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.f32s().unwrap(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = m(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let id = m(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id).unwrap().f32s().unwrap(), a.f32s().unwrap());
        assert_eq!(matmul(&id, &a).unwrap().f32s().unwrap(), a.f32s().unwrap());
    }

    #[test]
    fn rank1_lhs_is_row_vector() {
        let x = Tensor::from_f32([3], vec![1.0, 0.0, 2.0]).unwrap();
        let w = m(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let y = matmul(&x, &w).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2]);
        assert_eq!(y.f32s().unwrap(), &[11.0, 14.0]);
    }

    #[test]
    fn inner_dim_mismatch_errors() {
        let a = m(2, 3, vec![0.0; 6]);
        let b = m(2, 2, vec![0.0; 4]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_bt(&a, &a).is_err() || matmul_bt(&a, &a).is_ok()); // [2,3]x[2,3]ᵀ ok
        let c = m(3, 2, vec![0.0; 6]);
        assert!(matmul_bt(&a, &c).is_err());
        assert!(matmul_at(&a, &c).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let a = m(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, (0..12).map(|i| i as f32 * 0.5).collect());
        // matmul_at(a, b) == aᵀ·b
        let at = transpose2d(&a).unwrap();
        let want = matmul(&at, &b).unwrap();
        let got = matmul_at(&a, &b).unwrap();
        assert!(got.allclose(&want, 1e-6));

        // matmul_bt(x, y) == x·yᵀ
        let x = m(2, 3, vec![1.0, -1.0, 2.0, 0.5, 3.0, -2.0]);
        let y = m(4, 3, (0..12).map(|i| (i as f32) - 6.0).collect());
        let yt = transpose2d(&y).unwrap();
        let want = matmul(&x, &yt).unwrap();
        let got = matmul_bt(&x, &y).unwrap();
        assert!(got.allclose(&want, 1e-6));
    }

    #[test]
    fn row_block_path_is_bit_exact_vs_per_row() {
        // m > 1 takes the k-outer unrolled path; every row must be
        // bit-identical to a separate single-row (i-k-j) call. k = 11
        // covers two unrolled blocks plus a remainder of 3, and the
        // zeros force the skip fallback inside unrolled blocks on some
        // rows while others stay on the all-nonzero fast lane.
        let (rows, kd, cols) = (5usize, 11usize, 7usize);
        let av: Vec<f32> = (0..rows * kd)
            .map(|i| {
                if i % 9 == 4 {
                    0.0
                } else {
                    ((i as f32) * 0.7310585).sin() * 3.0
                }
            })
            .collect();
        let bv: Vec<f32> = (0..kd * cols)
            .map(|i| ((i as f32) - 38.5) * 0.0173)
            .collect();
        let a = m(rows, kd, av.clone());
        let b = m(kd, cols, bv);
        let stacked = matmul(&a, &b).unwrap();
        let sv = stacked.f32s().unwrap();
        for i in 0..rows {
            let row = m(1, kd, av[i * kd..(i + 1) * kd].to_vec());
            let want = matmul(&row, &b).unwrap();
            assert_eq!(
                &sv[i * cols..(i + 1) * cols],
                want.f32s().unwrap(),
                "row {i} of the blocked path differs from the per-row path"
            );
        }
    }

    #[test]
    fn rejects_high_rank() {
        let a = Tensor::zeros([2, 2, 2]);
        let b = Tensor::zeros([2, 2]);
        assert!(matmul(&a, &b).is_err());
    }
}
