//! Tensor kernels: the numerical operations behind every graph op.
//!
//! Kernels are grouped by family:
//!
//! * [`elementwise`] — `add`/`sub`/`mul`/`div` and scalar/bias broadcasts.
//! * [`mod@matmul`] — dense matrix products, including the transposed variants
//!   (`aᵀb`, `abᵀ`) needed by gradients without materializing transposes.
//! * [`activation`] — `tanh`/`sigmoid`/`relu`/`softmax` and their gradients.
//! * [`reduce`] — reductions and their shape-restoring gradient kernels.
//! * [`index`] — row gather/scatter, functional row updates (copy-on-write).
//! * [`shape_ops`] — concat / slice / stack / transpose.
//! * [`loss`] — fused softmax cross-entropy with integer labels.
//! * [`mod@bilinear`] — the RNTN bilinear tensor product `xᵀ V x`.
//! * [`scalar`] — `i32` scalar arithmetic and comparisons (tree indices,
//!   control-flow predicates).
//! * [`rng`] — seeded random tensor constructors (normal / uniform / Xavier).

pub mod activation;
pub mod bilinear;
pub mod elementwise;
pub mod index;
pub mod loss;
pub mod matmul;
pub mod reduce;
pub mod rng;
pub mod scalar;
pub mod shape_ops;

pub use activation::{
    log_softmax, log_softmax_grad, relu, relu_grad, sigmoid, sigmoid_grad, softmax, softmax_grad,
    tanh, tanh_grad,
};
pub use bilinear::{bilinear, bilinear_grad_v, bilinear_grad_x};
pub use elementwise::{add, add_bias, add_const, div, mul, neg, scalar_mul, scale, sub};
pub use index::{gather_rows, get_row, onehot, scatter_add_rows, scatter_rows_like, set_row};
pub use loss::{softmax_xent, softmax_xent_grad};
pub use matmul::{matmul, matmul_at, matmul_bt};
pub use reduce::{
    broadcast_rows_like, fill_like, mean_all, mean_all_grad, mean_axis0, sum_all, sum_axis0,
};
pub use rng::{randn, uniform, xavier_uniform};
pub use scalar::{
    gather_scalar_i32, iadd, idiv, ieq, ige, igt, ile, ilt, imul, isub, logical_and, logical_not,
    logical_or,
};
pub use shape_ops::{
    argmax_rows, concat_cols, concat_rows, pad_cols_like, slice_cols, stack_rows, transpose2d,
};
