//! Reduction kernels and their shape-restoring gradients.
//!
//! The gradient kernels take the *forward input* as a shape witness
//! (`mean_all_grad`, `broadcast_rows_like`) so the autodiff layer never needs
//! static shape inference for dynamic graphs.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

/// Sum of all elements, as a scalar tensor.
pub fn sum_all(a: &Tensor) -> Result<Tensor> {
    Ok(Tensor::scalar_f32(a.f32s()?.iter().sum()))
}

/// Mean of all elements, as a scalar tensor.
pub fn mean_all(a: &Tensor) -> Result<Tensor> {
    let v = a.f32s()?;
    if v.is_empty() {
        return Err(TensorError::invalid("mean_all of empty tensor"));
    }
    Ok(Tensor::scalar_f32(v.iter().sum::<f32>() / v.len() as f32))
}

/// Gradient of [`mean_all`]: fills the shape of `x` with `dy / numel(x)`.
pub fn mean_all_grad(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let g = dy.as_f32_scalar()? / x.numel() as f32;
    Ok(Tensor::full(x.shape().clone(), g))
}

/// Gradient of `sum_all`-style reductions: fills the shape of `x` with `dy`.
pub fn fill_like(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    Ok(Tensor::full(x.shape().clone(), dy.as_f32_scalar()?))
}

/// Column sums of a `[m, n]` matrix, producing `[n]` (bias gradients).
pub fn sum_axis0(a: &Tensor) -> Result<Tensor> {
    let (m, n) = a.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: a.rank(),
        ctx: "sum_axis0",
    })?;
    let av = a.f32s()?;
    let mut out = vec![0.0f32; n];
    for r in 0..m {
        let row = &av[r * n..(r + 1) * n];
        for j in 0..n {
            out[j] += row[j];
        }
    }
    Tensor::from_f32([n], out)
}

/// Column means of a `[m, n]` matrix, producing `[n]`.
pub fn mean_axis0(a: &Tensor) -> Result<Tensor> {
    let (m, _) = a.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: a.rank(),
        ctx: "mean_axis0",
    })?;
    if m == 0 {
        return Err(TensorError::invalid("mean_axis0 of zero-row matrix"));
    }
    crate::ops::elementwise::scale(&sum_axis0(a)?, 1.0 / m as f32)
}

/// Gradient of [`sum_axis0`]: repeats the row-gradient `dy: [n]` over the
/// rows of the shape witness `x: [m, n]`.
pub fn broadcast_rows_like(x: &Tensor, dy: &Tensor) -> Result<Tensor> {
    let (m, n) = x.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: x.rank(),
        ctx: "broadcast_rows_like",
    })?;
    if dy.numel() != n {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().clone(),
            rhs: dy.shape().clone(),
            ctx: "broadcast_rows_like",
        });
    }
    let dv = dy.f32s()?;
    let mut out = Vec::with_capacity(m * n);
    for _ in 0..m {
        out.extend_from_slice(dv);
    }
    Tensor::from_f32(x.shape().clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let a = Tensor::from_f32([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(sum_all(&a).unwrap().as_f32_scalar().unwrap(), 10.0);
        assert_eq!(mean_all(&a).unwrap().as_f32_scalar().unwrap(), 2.5);
    }

    #[test]
    fn mean_grad_distributes_evenly() {
        let x = Tensor::zeros([2, 2]);
        let dy = Tensor::scalar_f32(8.0);
        let g = mean_all_grad(&x, &dy).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert!(g.f32s().unwrap().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn sum_axis0_collapses_rows() {
        let a = Tensor::from_f32([3, 2], vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0]).unwrap();
        let s = sum_axis0(&a).unwrap();
        assert_eq!(s.shape().dims(), &[2]);
        assert_eq!(s.f32s().unwrap(), &[6.0, 60.0]);
        let m = mean_axis0(&a).unwrap();
        assert_eq!(m.f32s().unwrap(), &[2.0, 20.0]);
    }

    #[test]
    fn broadcast_rows_restores_shape() {
        let x = Tensor::zeros([3, 2]);
        let dy = Tensor::from_f32([2], vec![5.0, 7.0]).unwrap();
        let g = broadcast_rows_like(&x, &dy).unwrap();
        assert_eq!(g.shape().dims(), &[3, 2]);
        assert_eq!(g.f32s().unwrap(), &[5.0, 7.0, 5.0, 7.0, 5.0, 7.0]);
    }

    #[test]
    fn broadcast_rows_checks_width() {
        let x = Tensor::zeros([3, 2]);
        let dy = Tensor::from_f32([3], vec![1.0; 3]).unwrap();
        assert!(broadcast_rows_like(&x, &dy).is_err());
    }

    #[test]
    fn fill_like_uses_scalar() {
        let x = Tensor::zeros([4]);
        let g = fill_like(&x, &Tensor::scalar_f32(3.0)).unwrap();
        assert_eq!(g.f32s().unwrap(), &[3.0; 4]);
    }

    #[test]
    fn rank_checks() {
        let s = Tensor::scalar_f32(1.0);
        assert!(sum_axis0(&s).is_err());
        assert!(mean_axis0(&s).is_err());
    }
}
