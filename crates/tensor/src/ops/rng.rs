//! Seeded random tensor constructors.
//!
//! Normal sampling uses the Box–Muller transform so the crate only depends on
//! `rand`'s core uniform generator (no `rand_distr`).

use crate::shape::Shape;
use crate::tensor::Tensor;
use rand::Rng;

/// Samples an `f32` tensor from `N(0, std²)`.
pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Box–Muller: two uniforms → two independent standard normals.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        out.push(r * theta.cos() * std);
        if out.len() < n {
            out.push(r * theta.sin() * std);
        }
    }
    Tensor::from_f32(shape, out).expect("randn: shape/len invariant")
}

/// Samples an `f32` tensor uniformly from `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let n = shape.numel();
    let out: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_f32(shape, out).expect("uniform: shape/len invariant")
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    uniform([fan_in, fan_out], -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = randn([10_000], 2.0, &mut rng);
        let v = t.f32s().unwrap();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform([1000], -0.5, 0.5, &mut rng);
        assert!(t.f32s().unwrap().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = randn([16], 1.0, &mut StdRng::seed_from_u64(1));
        let b = randn([16], 1.0, &mut StdRng::seed_from_u64(1));
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(3);
        let big = xavier_uniform(1000, 1000, &mut rng);
        let bound = (6.0f32 / 2000.0).sqrt();
        assert!(big.f32s().unwrap().iter().all(|&x| x.abs() <= bound));
        assert_eq!(big.shape().dims(), &[1000, 1000]);
    }

    #[test]
    fn odd_element_count_randn() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = randn([7], 1.0, &mut rng);
        assert_eq!(t.numel(), 7);
    }
}
