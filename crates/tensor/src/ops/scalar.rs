//! `i32` scalar arithmetic and comparisons.
//!
//! These are the kernels behind tree-index math (`left_idx = children[2·i]`)
//! and control-flow predicates (`is_leaf(idx)`). Predicates follow the C
//! convention: `0` is false, non-zero is true; comparison results are `0/1`.

use crate::tensor::Tensor;
use crate::Result;

fn bin_i32(a: &Tensor, b: &Tensor, f: impl Fn(i32, i32) -> i32) -> Result<Tensor> {
    let x = a.as_i32_scalar()?;
    let y = b.as_i32_scalar()?;
    Ok(Tensor::scalar_i32(f(x, y)))
}

/// Scalar integer addition.
pub fn iadd(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| x.wrapping_add(y))
}

/// Scalar integer subtraction.
pub fn isub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| x.wrapping_sub(y))
}

/// Scalar integer multiplication.
pub fn imul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| x.wrapping_mul(y))
}

/// Scalar integer division (truncating); division by zero is an error.
pub fn idiv(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let y = b.as_i32_scalar()?;
    if y == 0 {
        return Err(crate::TensorError::invalid("integer division by zero"));
    }
    let x = a.as_i32_scalar()?;
    Ok(Tensor::scalar_i32(x / y))
}

/// `a < b` as `0/1`.
pub fn ilt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| (x < y) as i32)
}

/// `a <= b` as `0/1`.
pub fn ile(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| (x <= y) as i32)
}

/// `a > b` as `0/1`.
pub fn igt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| (x > y) as i32)
}

/// `a >= b` as `0/1`.
pub fn ige(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| (x >= y) as i32)
}

/// `a == b` as `0/1`.
pub fn ieq(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| (x == y) as i32)
}

/// Logical AND of two predicates (non-zero = true).
pub fn logical_and(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| ((x != 0) && (y != 0)) as i32)
}

/// Logical OR of two predicates.
pub fn logical_or(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    bin_i32(a, b, |x, y| ((x != 0) || (y != 0)) as i32)
}

/// Logical NOT of a predicate.
pub fn logical_not(a: &Tensor) -> Result<Tensor> {
    Ok(Tensor::scalar_i32((a.as_i32_scalar()? == 0) as i32))
}

/// Gathers element `i` of a rank-1 `i32` tensor as a scalar tensor.
pub fn gather_scalar_i32(t: &Tensor, i: &Tensor) -> Result<Tensor> {
    let tv = t.i32s()?;
    let idx = i.as_i32_scalar()?;
    if idx < 0 || idx as usize >= tv.len() {
        return Err(crate::TensorError::IndexOutOfRange {
            index: idx as i64,
            bound: tv.len(),
            ctx: "gather_scalar_i32",
        });
    }
    Ok(Tensor::scalar_i32(tv[idx as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: i32) -> Tensor {
        Tensor::scalar_i32(v)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(iadd(&s(2), &s(3)).unwrap().as_i32_scalar().unwrap(), 5);
        assert_eq!(isub(&s(2), &s(3)).unwrap().as_i32_scalar().unwrap(), -1);
        assert_eq!(imul(&s(4), &s(3)).unwrap().as_i32_scalar().unwrap(), 12);
        assert_eq!(idiv(&s(7), &s(2)).unwrap().as_i32_scalar().unwrap(), 3);
        assert!(idiv(&s(1), &s(0)).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(ilt(&s(1), &s(2)).unwrap().as_i32_scalar().unwrap(), 1);
        assert_eq!(ilt(&s(2), &s(2)).unwrap().as_i32_scalar().unwrap(), 0);
        assert_eq!(ile(&s(2), &s(2)).unwrap().as_i32_scalar().unwrap(), 1);
        assert_eq!(igt(&s(3), &s(2)).unwrap().as_i32_scalar().unwrap(), 1);
        assert_eq!(ige(&s(1), &s(2)).unwrap().as_i32_scalar().unwrap(), 0);
        assert_eq!(ieq(&s(5), &s(5)).unwrap().as_i32_scalar().unwrap(), 1);
    }

    #[test]
    fn logic() {
        assert_eq!(
            logical_and(&s(1), &s(2)).unwrap().as_i32_scalar().unwrap(),
            1
        );
        assert_eq!(
            logical_and(&s(1), &s(0)).unwrap().as_i32_scalar().unwrap(),
            0
        );
        assert_eq!(
            logical_or(&s(0), &s(7)).unwrap().as_i32_scalar().unwrap(),
            1
        );
        assert_eq!(logical_not(&s(0)).unwrap().as_i32_scalar().unwrap(), 1);
        assert_eq!(logical_not(&s(9)).unwrap().as_i32_scalar().unwrap(), 0);
    }

    #[test]
    fn gather_scalar() {
        let t = Tensor::from_i32([3], vec![10, 20, 30]).unwrap();
        assert_eq!(
            gather_scalar_i32(&t, &s(1))
                .unwrap()
                .as_i32_scalar()
                .unwrap(),
            20
        );
        assert!(gather_scalar_i32(&t, &s(3)).is_err());
        assert!(gather_scalar_i32(&t, &s(-1)).is_err());
    }

    #[test]
    fn float_operands_rejected() {
        let f = Tensor::scalar_f32(1.0);
        assert!(iadd(&f, &s(1)).is_err());
        assert!(ilt(&s(1), &f).is_err());
    }
}
