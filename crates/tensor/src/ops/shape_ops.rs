//! Shape-manipulating kernels: concat, slice, stack, transpose, argmax.

use crate::error::TensorError;
use crate::tensor::Tensor;
use crate::Result;

fn as_rows<'t>(t: &'t Tensor, ctx: &'static str) -> Result<(usize, usize, &'t [f32])> {
    let (m, n) = t.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: t.rank(),
        ctx,
    })?;
    Ok((m, n, t.f32s()?))
}

/// Concatenates `[m, p]` and `[m, q]` along columns into `[m, p + q]`.
///
/// This is how the tree cells join left/right child states (`[h_l; h_r]`).
pub fn concat_cols(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ma, p, av) = as_rows(a, "concat_cols lhs")?;
    let (mb, q, bv) = as_rows(b, "concat_cols rhs")?;
    if ma != mb {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().clone(),
            rhs: b.shape().clone(),
            ctx: "concat_cols",
        });
    }
    let mut out = Vec::with_capacity(ma * (p + q));
    for r in 0..ma {
        out.extend_from_slice(&av[r * p..(r + 1) * p]);
        out.extend_from_slice(&bv[r * q..(r + 1) * q]);
    }
    Tensor::from_f32([ma, p + q], out)
}

/// Concatenates matrices with equal column counts along rows.
pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
    if parts.is_empty() {
        return Err(TensorError::invalid("concat_rows of zero tensors"));
    }
    let (_, n, _) = as_rows(parts[0], "concat_rows")?;
    let mut rows = 0usize;
    let mut out = Vec::new();
    for t in parts {
        let (m, nt, tv) = as_rows(t, "concat_rows")?;
        if nt != n {
            return Err(TensorError::ShapeMismatch {
                lhs: parts[0].shape().clone(),
                rhs: t.shape().clone(),
                ctx: "concat_rows",
            });
        }
        rows += m;
        out.extend_from_slice(tv);
    }
    Tensor::from_f32([rows, n], out)
}

/// Stacks `m` row vectors (`[d]` or `[1, d]`) into a `[m, d]` matrix.
pub fn stack_rows(rows: &[&Tensor]) -> Result<Tensor> {
    if rows.is_empty() {
        return Err(TensorError::invalid("stack_rows of zero tensors"));
    }
    let d = rows[0].numel();
    let mut out = Vec::with_capacity(rows.len() * d);
    for r in rows {
        if r.numel() != d {
            return Err(TensorError::ShapeMismatch {
                lhs: rows[0].shape().clone(),
                rhs: r.shape().clone(),
                ctx: "stack_rows",
            });
        }
        out.extend_from_slice(r.f32s()?);
    }
    Tensor::from_f32([rows.len(), d], out)
}

/// Extracts columns `lo..hi` of `t: [m, n]` into `[m, hi - lo]`.
pub fn slice_cols(t: &Tensor, lo: usize, hi: usize) -> Result<Tensor> {
    let (m, n, tv) = as_rows(t, "slice_cols")?;
    if lo > hi || hi > n {
        return Err(TensorError::IndexOutOfRange {
            index: hi as i64,
            bound: n,
            ctx: "slice_cols",
        });
    }
    let w = hi - lo;
    let mut out = Vec::with_capacity(m * w);
    for r in 0..m {
        out.extend_from_slice(&tv[r * n + lo..r * n + hi]);
    }
    Tensor::from_f32([m, w], out)
}

/// Gradient of [`slice_cols`]: embeds `dy` back at column offset `lo` inside
/// a zero matrix shaped like the forward input `x`.
pub fn pad_cols_like(x: &Tensor, dy: &Tensor, lo: usize) -> Result<Tensor> {
    let (m, n) = x.shape().as_matrix().ok_or(TensorError::RankMismatch {
        expected: 2,
        got: x.rank(),
        ctx: "pad_cols_like",
    })?;
    let (md, w, dv) = as_rows(dy, "pad_cols_like dy")?;
    if md != m || lo + w > n {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().clone(),
            rhs: dy.shape().clone(),
            ctx: "pad_cols_like",
        });
    }
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        out[r * n + lo..r * n + lo + w].copy_from_slice(&dv[r * w..(r + 1) * w]);
    }
    Tensor::from_f32([m, n], out)
}

/// Transpose of a rank-2 matrix.
pub fn transpose2d(t: &Tensor) -> Result<Tensor> {
    let (m, n, tv) = as_rows(t, "transpose2d")?;
    let mut out = vec![0.0f32; m * n];
    for r in 0..m {
        for c in 0..n {
            out[c * m + r] = tv[r * n + c];
        }
    }
    Tensor::from_f32([n, m], out)
}

/// Index of the maximum element in each row, as `i32[m]`.
pub fn argmax_rows(t: &Tensor) -> Result<Tensor> {
    let (m, n, tv) = as_rows(t, "argmax_rows")?;
    if n == 0 {
        return Err(TensorError::invalid("argmax_rows of zero-width matrix"));
    }
    let mut out = Vec::with_capacity(m);
    for r in 0..m {
        let row = &tv[r * n..(r + 1) * n];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out.push(best as i32);
    }
    Tensor::from_i32([m], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_cols_joins() {
        let a = Tensor::from_f32([2, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = concat_cols(&a, &b).unwrap();
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.f32s().unwrap(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_then_slice_roundtrips() {
        let a = Tensor::from_f32([1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([1, 3], vec![3.0, 4.0, 5.0]).unwrap();
        let c = concat_cols(&a, &b).unwrap();
        assert!(slice_cols(&c, 0, 2).unwrap().allclose(&a, 0.0));
        assert!(slice_cols(&c, 2, 5).unwrap().allclose(&b, 0.0));
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::from_f32([1, 2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([2, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        let c = concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.f32s().unwrap(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn stack_rows_accepts_rank1_and_rank2() {
        let a = Tensor::from_f32([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([1, 2], vec![3.0, 4.0]).unwrap();
        let s = stack_rows(&[&a, &b]).unwrap();
        assert_eq!(s.shape().dims(), &[2, 2]);
        assert_eq!(s.f32s().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn pad_cols_like_is_slice_grad() {
        let x = Tensor::zeros([2, 4]);
        let dy = Tensor::from_f32([2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let g = pad_cols_like(&x, &dy, 1).unwrap();
        assert_eq!(g.f32s().unwrap(), &[0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_f32([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let tt = transpose2d(&transpose2d(&t).unwrap()).unwrap();
        assert!(tt.allclose(&t, 0.0));
        assert_eq!(transpose2d(&t).unwrap().shape().dims(), &[3, 2]);
    }

    #[test]
    fn argmax_picks_first_max() {
        let t = Tensor::from_f32([2, 3], vec![1.0, 5.0, 5.0, -1.0, -2.0, -0.5]).unwrap();
        let a = argmax_rows(&t).unwrap();
        assert_eq!(a.i32s().unwrap(), &[1, 2]);
    }

    #[test]
    fn shape_errors() {
        let a = Tensor::from_f32([2, 1], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([3, 1], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(concat_cols(&a, &b).is_err());
        assert!(slice_cols(&a, 0, 2).is_err());
        assert!(concat_rows(&[]).is_err());
        assert!(stack_rows(&[]).is_err());
    }
}
