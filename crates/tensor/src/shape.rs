//! Row-major tensor shapes.

use std::fmt;

/// The shape (dimension sizes) of a [`crate::Tensor`], row-major.
///
/// A rank-0 shape (`[]`) denotes a scalar with exactly one element; this is
/// the convention used for loss values and control-flow predicates.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from explicit dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The scalar shape `[]` (one element, rank zero).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// A rank-1 shape `[n]`.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// A rank-2 shape `[rows, cols]`.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`; callers validate axes before indexing.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Total number of elements (product of all dimensions, 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` if this shape holds exactly one element.
    ///
    /// Both `[]` and `[1]` (and `[1, 1]`, …) are accepted as scalar-like;
    /// control-flow predicates use this relaxed notion.
    pub fn is_scalar_like(&self) -> bool {
        self.numel() == 1
    }

    /// Row-major strides for this shape (innermost dimension has stride 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1usize;
        for (i, d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }

    /// Interprets this shape as a matrix, returning `(rows, cols)`.
    ///
    /// Rank-1 shapes are viewed as a single row; returns `None` for rank > 2
    /// or rank 0.
    pub fn as_matrix(&self) -> Option<(usize, usize)> {
        match self.0.as_slice() {
            [cols] => Some((1, *cols)),
            [rows, cols] => Some((*rows, *cols)),
            _ => None,
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.is_scalar_like());
    }

    #[test]
    fn numel_is_product_of_dims() {
        assert_eq!(Shape::new(vec![2, 3, 4]).numel(), 24);
        assert_eq!(Shape::vector(7).numel(), 7);
        assert_eq!(Shape::matrix(5, 6).numel(), 30);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(vec![2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::vector(5).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn as_matrix_views() {
        assert_eq!(Shape::vector(4).as_matrix(), Some((1, 4)));
        assert_eq!(Shape::matrix(3, 4).as_matrix(), Some((3, 4)));
        assert_eq!(Shape::scalar().as_matrix(), None);
        assert_eq!(Shape::new(vec![2, 2, 2]).as_matrix(), None);
    }

    #[test]
    fn display_renders_brackets() {
        assert_eq!(Shape::new(vec![2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn one_one_is_scalar_like() {
        assert!(Shape::new(vec![1, 1]).is_scalar_like());
        assert!(!Shape::new(vec![1, 2]).is_scalar_like());
    }
}
