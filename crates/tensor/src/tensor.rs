//! The [`Tensor`] type: immutable, reference-counted, copy-on-write.

use crate::error::TensorError;
use crate::shape::Shape;
use crate::Result;
use std::fmt;
use std::sync::Arc;

/// Element type of a tensor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DType {
    /// 32-bit IEEE-754 float — all differentiable values.
    F32,
    /// 32-bit signed integer — indices, predicates, word ids, tree topology.
    I32,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DType::F32 => write!(f, "f32"),
            DType::I32 => write!(f, "i32"),
        }
    }
}

/// Reference-counted element storage.
///
/// Cloning a [`Tensor`] clones the `Arc`, not the data. Mutation goes through
/// [`Tensor::make_f32_mut`] / [`Tensor::make_i32_mut`], which copy only when
/// the buffer is shared (classic copy-on-write). The executor exploits this:
/// functional row updates (`set_row`) in long iterative chains mutate in
/// place once the previous value's last consumer has released its reference.
#[derive(Clone, Debug)]
pub enum Buffer {
    /// Float storage.
    F32(Arc<Vec<f32>>),
    /// Integer storage.
    I32(Arc<Vec<i32>>),
}

impl Buffer {
    /// Dtype tag of this buffer.
    pub fn dtype(&self) -> DType {
        match self {
            Buffer::F32(_) => DType::F32,
            Buffer::I32(_) => DType::I32,
        }
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        match self {
            Buffer::F32(v) => v.len(),
            Buffer::I32(v) => v.len(),
        }
    }

    /// Returns `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A dense, row-major tensor of `f32` or `i32` elements.
///
/// Tensors are cheap to clone (shared storage) and logically immutable; all
/// kernels in [`crate::ops`] produce new tensors. See [`Buffer`] for the
/// copy-on-write escape hatch used by performance-sensitive kernels.
#[derive(Clone, Debug)]
pub struct Tensor {
    shape: Shape,
    buf: Buffer,
}

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Creates an `f32` tensor from a flat row-major buffer.
    pub fn from_f32(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: data.len(),
                ctx: "Tensor::from_f32",
            });
        }
        Ok(Tensor {
            shape,
            buf: Buffer::F32(Arc::new(data)),
        })
    }

    /// Creates an `i32` tensor from a flat row-major buffer.
    pub fn from_i32(shape: impl Into<Shape>, data: Vec<i32>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: data.len(),
                ctx: "Tensor::from_i32",
            });
        }
        Ok(Tensor {
            shape,
            buf: Buffer::I32(Arc::new(data)),
        })
    }

    /// An `f32` tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            buf: Buffer::F32(Arc::new(vec![value; n])),
        }
    }

    /// An `f32` tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// An `f32` tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// An `f32` tensor of zeros with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Tensor::full(other.shape().clone(), 0.0)
    }

    /// A scalar (`[]`-shaped) `f32` tensor.
    pub fn scalar_f32(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            buf: Buffer::F32(Arc::new(vec![value])),
        }
    }

    /// A scalar (`[]`-shaped) `i32` tensor.
    pub fn scalar_i32(value: i32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            buf: Buffer::I32(Arc::new(vec![value])),
        }
    }

    /// An `i32` tensor of zeros.
    pub fn zeros_i32(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            buf: Buffer::I32(Arc::new(vec![0; n])),
        }
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// Shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dtype of this tensor.
    pub fn dtype(&self) -> DType {
        self.buf.dtype()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Borrows the `f32` elements, or errors if this is an `i32` tensor.
    pub fn f32s(&self) -> Result<&[f32]> {
        match &self.buf {
            Buffer::F32(v) => Ok(v),
            Buffer::I32(_) => Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                got: DType::I32,
                ctx: "Tensor::f32s",
            }),
        }
    }

    /// Borrows the `i32` elements, or errors if this is an `f32` tensor.
    pub fn i32s(&self) -> Result<&[i32]> {
        match &self.buf {
            Buffer::I32(v) => Ok(v),
            Buffer::F32(_) => Err(TensorError::DTypeMismatch {
                expected: DType::I32,
                got: DType::F32,
                ctx: "Tensor::i32s",
            }),
        }
    }

    /// Extracts the single `f32` element of a scalar-like tensor.
    pub fn as_f32_scalar(&self) -> Result<f32> {
        if !self.shape.is_scalar_like() {
            return Err(TensorError::NotAScalar {
                shape: self.shape.clone(),
                ctx: "Tensor::as_f32_scalar",
            });
        }
        Ok(self.f32s()?[0])
    }

    /// Extracts the single `i32` element of a scalar-like tensor.
    pub fn as_i32_scalar(&self) -> Result<i32> {
        if !self.shape.is_scalar_like() {
            return Err(TensorError::NotAScalar {
                shape: self.shape.clone(),
                ctx: "Tensor::as_i32_scalar",
            });
        }
        Ok(self.i32s()?[0])
    }

    /// Returns `true` if the underlying buffer is not shared with any other
    /// tensor (mutation via `make_*_mut` would be in place).
    pub fn is_unique(&self) -> bool {
        match &self.buf {
            Buffer::F32(v) => Arc::strong_count(v) == 1,
            Buffer::I32(v) => Arc::strong_count(v) == 1,
        }
    }

    /// Mutable access to the `f32` elements, copying first if shared.
    ///
    /// This is the copy-on-write primitive used by kernels such as `set_row`
    /// so that single-owner update chains avoid O(N) copies per step.
    pub fn make_f32_mut(&mut self) -> Result<&mut [f32]> {
        match &mut self.buf {
            Buffer::F32(v) => Ok(Arc::make_mut(v).as_mut_slice()),
            Buffer::I32(_) => Err(TensorError::DTypeMismatch {
                expected: DType::F32,
                got: DType::I32,
                ctx: "Tensor::make_f32_mut",
            }),
        }
    }

    /// Mutable access to the `i32` elements, copying first if shared.
    pub fn make_i32_mut(&mut self) -> Result<&mut [i32]> {
        match &mut self.buf {
            Buffer::I32(v) => Ok(Arc::make_mut(v).as_mut_slice()),
            Buffer::F32(_) => Err(TensorError::DTypeMismatch {
                expected: DType::I32,
                got: DType::F32,
                ctx: "Tensor::make_i32_mut",
            }),
        }
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                got: self.numel(),
                ctx: "Tensor::reshape",
            });
        }
        Ok(Tensor {
            shape,
            buf: self.buf.clone(),
        })
    }

    /// Element-wise approximate equality for `f32` tensors (same shape).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        if self.shape != other.shape {
            return false;
        }
        match (self.f32s(), other.f32s()) {
            (Ok(a), Ok(b)) => a
                .iter()
                .zip(b.iter())
                .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs()))),
            _ => match (self.i32s(), other.i32s()) {
                (Ok(a), Ok(b)) => a == b,
                _ => false,
            },
        }
    }

    /// Raw access to the buffer (used by the executor for statistics).
    pub fn buffer(&self) -> &Buffer {
        &self.buf
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX: usize = 16;
        write!(f, "Tensor<{}>{}", self.dtype(), self.shape)?;
        match &self.buf {
            Buffer::F32(v) => {
                let shown: Vec<String> = v.iter().take(MAX).map(|x| format!("{x:.4}")).collect();
                write!(
                    f,
                    " [{}{}]",
                    shown.join(", "),
                    if v.len() > MAX { ", …" } else { "" }
                )
            }
            Buffer::I32(v) => {
                let shown: Vec<String> = v.iter().take(MAX).map(|x| x.to_string()).collect();
                write!(
                    f,
                    " [{}{}]",
                    shown.join(", "),
                    if v.len() > MAX { ", …" } else { "" }
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_length() {
        assert!(Tensor::from_f32([2, 2], vec![1.0, 2.0, 3.0, 4.0]).is_ok());
        assert!(Tensor::from_f32([2, 2], vec![1.0]).is_err());
        assert!(Tensor::from_i32([3], vec![1, 2, 3]).is_ok());
        assert!(Tensor::from_i32([3], vec![1]).is_err());
    }

    #[test]
    fn dtype_accessors_enforce_types() {
        let t = Tensor::scalar_i32(7);
        assert_eq!(t.as_i32_scalar().unwrap(), 7);
        assert!(t.as_f32_scalar().is_err());
        assert!(t.f32s().is_err());
        assert_eq!(t.dtype(), DType::I32);
    }

    #[test]
    fn scalar_extraction_rejects_vectors() {
        let t = Tensor::from_f32([2], vec![1.0, 2.0]).unwrap();
        assert!(t.as_f32_scalar().is_err());
        let one = Tensor::from_f32([1, 1], vec![3.0]).unwrap();
        assert_eq!(one.as_f32_scalar().unwrap(), 3.0);
    }

    #[test]
    fn clone_shares_storage_and_cow_copies() {
        let mut a = Tensor::from_f32([3], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(a.is_unique());
        let b = a.clone();
        assert!(!a.is_unique());
        // Copy-on-write: mutating `a` must not affect `b`.
        a.make_f32_mut().unwrap()[0] = 99.0;
        assert_eq!(b.f32s().unwrap()[0], 1.0);
        assert_eq!(a.f32s().unwrap()[0], 99.0);
        // After the write both are unique again.
        assert!(a.is_unique());
        assert!(b.is_unique());
    }

    #[test]
    fn unique_mutation_is_in_place() {
        let mut a = Tensor::from_f32([2], vec![1.0, 2.0]).unwrap();
        let ptr_before = a.f32s().unwrap().as_ptr();
        a.make_f32_mut().unwrap()[1] = 5.0;
        let ptr_after = a.f32s().unwrap().as_ptr();
        assert_eq!(ptr_before, ptr_after, "unique buffers must mutate in place");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_f32([2, 3], (0..6).map(|i| i as f32).collect()).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.shape().dims(), &[3, 2]);
        assert_eq!(r.f32s().unwrap(), t.f32s().unwrap());
        assert!(t.reshape([4]).is_err());
    }

    #[test]
    fn allclose_compares_within_tolerance() {
        let a = Tensor::from_f32([2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_f32([2], vec![1.0 + 1e-7, 2.0]).unwrap();
        assert!(a.allclose(&b, 1e-5));
        let c = Tensor::from_f32([2], vec![1.1, 2.0]).unwrap();
        assert!(!a.allclose(&c, 1e-5));
        let d = Tensor::from_f32([1, 2], vec![1.0, 2.0]).unwrap();
        assert!(!a.allclose(&d, 1e-5), "shape mismatch must not be close");
    }

    #[test]
    fn display_is_truncated() {
        let t = Tensor::zeros([100]);
        let s = t.to_string();
        assert!(s.contains('…'));
        assert!(s.len() < 400);
    }
}
