//! Property-based tests over the tensor kernel library.

use proptest::prelude::*;
use rdg_tensor::ops;
use rdg_tensor::Tensor;

fn vec_f32(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-10.0f32..10.0, n..=n)
}

fn small_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..6, 1usize..6, 1usize..6)
}

proptest! {
    #[test]
    fn add_commutes(v in small_dims().prop_flat_map(|(m, n, _)| {
        (Just((m, n)), vec_f32(m * n), vec_f32(m * n))
    })) {
        let ((m, n), a, b) = v;
        let ta = Tensor::from_f32([m, n], a).unwrap();
        let tb = Tensor::from_f32([m, n], b).unwrap();
        let ab = ops::add(&ta, &tb).unwrap();
        let ba = ops::add(&tb, &ta).unwrap();
        prop_assert!(ab.allclose(&ba, 1e-6));
    }

    #[test]
    fn matmul_distributes_over_add(v in small_dims().prop_flat_map(|(m, k, n)| {
        (Just((m, k, n)), vec_f32(m * k), vec_f32(k * n), vec_f32(k * n))
    })) {
        let ((m, k, n), a, b, c) = v;
        let ta = Tensor::from_f32([m, k], a).unwrap();
        let tb = Tensor::from_f32([k, n], b).unwrap();
        let tc = Tensor::from_f32([k, n], c).unwrap();
        // A(B + C) == AB + AC
        let lhs = ops::matmul(&ta, &ops::add(&tb, &tc).unwrap()).unwrap();
        let rhs = ops::add(
            &ops::matmul(&ta, &tb).unwrap(),
            &ops::matmul(&ta, &tc).unwrap(),
        ).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_transposed_variants_agree(v in small_dims().prop_flat_map(|(m, k, n)| {
        (Just((m, k, n)), vec_f32(m * k), vec_f32(k * n))
    })) {
        let ((m, k, n), a, b) = v;
        let ta = Tensor::from_f32([m, k], a).unwrap();
        let tb = Tensor::from_f32([k, n], b).unwrap();
        let direct = ops::matmul(&ta, &tb).unwrap();
        // (AᵀᵀB): feed transpose into matmul_at.
        let tat = ops::transpose2d(&ta).unwrap();
        let via_at = ops::matmul_at(&tat, &tb).unwrap();
        prop_assert!(direct.allclose(&via_at, 1e-4));
        // (A·(Bᵀ)ᵀ): feed transpose into matmul_bt.
        let tbt = ops::transpose2d(&tb).unwrap();
        let via_bt = ops::matmul_bt(&ta, &tbt).unwrap();
        prop_assert!(direct.allclose(&via_bt, 1e-4));
    }

    #[test]
    fn softmax_rows_are_distributions(v in small_dims().prop_flat_map(|(m, n, _)| {
        (Just((m, n)), vec_f32(m * n))
    })) {
        let ((m, n), x) = v;
        let t = Tensor::from_f32([m, n], x).unwrap();
        let y = ops::softmax(&t).unwrap();
        let yv = y.f32s().unwrap();
        for r in 0..m {
            let row = &yv[r * n..(r + 1) * n];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn concat_slice_roundtrip(v in small_dims().prop_flat_map(|(m, p, q)| {
        (Just((m, p, q)), vec_f32(m * p), vec_f32(m * q))
    })) {
        let ((m, p, q), a, b) = v;
        let ta = Tensor::from_f32([m, p], a).unwrap();
        let tb = Tensor::from_f32([m, q], b).unwrap();
        let c = ops::concat_cols(&ta, &tb).unwrap();
        prop_assert!(ops::slice_cols(&c, 0, p).unwrap().allclose(&ta, 0.0));
        prop_assert!(ops::slice_cols(&c, p, p + q).unwrap().allclose(&tb, 0.0));
    }

    #[test]
    fn gather_after_scatter_recovers_rows(
        (v, d, ids) in (2usize..8, 1usize..5).prop_flat_map(|(v, d)| {
            (Just(v), Just(d), prop::collection::vec(0..v as i32, 1..6))
        })
    ) {
        // Scatter unique-free rows then gather them back: gathered row =
        // sum of all scattered rows with that id.
        let m = ids.len();
        let src: Vec<f32> = (0..m * d).map(|i| i as f32 + 1.0).collect();
        let tids = Tensor::from_i32([m], ids.clone()).unwrap();
        let tsrc = Tensor::from_f32([m, d], src.clone()).unwrap();
        let like = Tensor::zeros([v, d]);
        let table = ops::scatter_rows_like(&like, &tids, &tsrc).unwrap();
        let back = ops::gather_rows(&table, &tids).unwrap();
        let bv = back.f32s().unwrap();
        for (r, &id) in ids.iter().enumerate() {
            // Expected: sum over all source rows with the same id.
            for j in 0..d {
                let want: f32 = ids.iter().enumerate()
                    .filter(|(_, &i2)| i2 == id)
                    .map(|(r2, _)| src[r2 * d + j])
                    .sum();
                prop_assert!((bv[r * d + j] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn set_then_get_row(
        (m, d, i) in (1usize..6, 1usize..6).prop_flat_map(|(m, d)| {
            (Just(m), Just(d), 0..m as i32)
        })
    ) {
        let base = Tensor::zeros([m, d]);
        let row: Vec<f32> = (0..d).map(|j| j as f32 + 0.5).collect();
        let trow = Tensor::from_f32([d], row.clone()).unwrap();
        let ti = Tensor::scalar_i32(i);
        let updated = ops::set_row(base, &ti, &trow).unwrap();
        let got = ops::get_row(&updated, &ti).unwrap();
        prop_assert_eq!(got.f32s().unwrap(), &row[..]);
    }

    #[test]
    fn sum_axis0_matches_manual(v in small_dims().prop_flat_map(|(m, n, _)| {
        (Just((m, n)), vec_f32(m * n))
    })) {
        let ((m, n), x) = v;
        let t = Tensor::from_f32([m, n], x.clone()).unwrap();
        let s = ops::sum_axis0(&t).unwrap();
        for j in 0..n {
            let want: f32 = (0..m).map(|r| x[r * n + j]).sum();
            prop_assert!((s.f32s().unwrap()[j] - want).abs() < 1e-3);
        }
    }

    #[test]
    fn bilinear_grads_check(
        (m, k) in (1usize..4, 1usize..3)
    ) {
        // Deterministic pseudo-random contents.
        let xs: Vec<f32> = (0..m).map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.2).collect();
        let vs: Vec<f32> = (0..k * m * m).map(|i| ((i * 5 % 9) as f32 - 4.0) * 0.15).collect();
        let x = Tensor::from_f32([1, m], xs.clone()).unwrap();
        let v = Tensor::from_f32([k, m, m], vs.clone()).unwrap();
        let dy = Tensor::ones([1, k]);
        let gx = ops::bilinear_grad_x(&x, &v, &dy).unwrap();
        let h = 1e-2f32;
        let f = |xs: &[f32]| -> f32 {
            let x = Tensor::from_f32([1, m], xs.to_vec()).unwrap();
            ops::bilinear(&x, &v).unwrap().f32s().unwrap().iter().sum()
        };
        for i in 0..m {
            let mut xp = xs.clone(); xp[i] += h;
            let mut xm = xs.clone(); xm[i] -= h;
            let fd = (f(&xp) - f(&xm)) / (2.0 * h);
            prop_assert!((gx.f32s().unwrap()[i] - fd).abs() < 1e-2);
        }
    }
}
