//! Head-to-head: recursive vs iterative vs unrolled vs folding on the same
//! model, same weights, same data — a miniature of the paper's §6.
//!
//! Run with: `cargo run --release --example compare_backends`

use rdg_core::fold::FoldEngine;
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let batch = 10;
    let repeats = 5;
    let mut cfg = ModelConfig::paper_default(ModelKind::TreeRnn, batch);
    cfg.vocab = 500;
    let data = Dataset::generate(DatasetConfig {
        vocab: cfg.vocab,
        n_train: batch,
        n_valid: 0,
        min_len: 8,
        max_len: 24,
        seed: 3,
        ..DatasetConfig::default()
    });
    let insts = data.split(Split::Train).to_vec();
    let feeds = Dataset::feeds_for(&insts);

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let exec = Executor::with_threads(threads);
    let rec =
        Session::new(Arc::clone(&exec), build_recursive(&cfg).expect("build")).expect("session");
    let itr = Session::with_params(
        Arc::clone(&exec),
        build_iterative(&cfg).expect("build"),
        Arc::clone(rec.params()),
    )
    .expect("session");
    let mut unr = UnrolledModel::new(cfg.clone()).expect("build");
    unr.set_params(Arc::clone(rec.params()));
    let mut fold = FoldEngine::new(cfg).expect("build");
    fold.set_params(Arc::clone(rec.params()));

    println!("TreeRNN inference, batch {batch}, {threads} threads, mean of {repeats} runs");
    println!("{:<12} {:>16} {:>14}", "backend", "instances/s", "loss");

    let bench = |name: &str, f: &mut dyn FnMut() -> f32| {
        let _ = f(); // warm-up
        let t0 = Instant::now();
        let mut loss = 0.0;
        for _ in 0..repeats {
            loss = f();
        }
        let per_sec = (repeats * batch) as f64 / t0.elapsed().as_secs_f64();
        println!("{name:<12} {per_sec:>16.1} {loss:>14.4}");
    };

    bench("recursive", &mut || {
        rec.run(feeds.clone()).expect("run")[0]
            .as_f32_scalar()
            .expect("loss")
    });
    bench("iterative", &mut || {
        itr.run(feeds.clone()).expect("run")[0]
            .as_f32_scalar()
            .expect("loss")
    });
    bench("unrolled", &mut || {
        unr.run_inference(&insts).expect("run").0
    });
    bench("folding", &mut || fold.infer(&insts).expect("run").0);

    println!();
    println!(
        "identical losses confirm the implementations compute the same \
         function; the throughput spread is the paper's whole story."
    );
}
