//! Dynamically-structured models: TD-TreeLSTM sentence-tree generation.
//!
//! The tree's shape is decided *during* execution from computed values
//! (`σ(w·h) > θ` at every node), so no ahead-of-time batching scheme can
//! express this model (paper §6.4.2, Table 3) — but recursive graphs run it
//! naturally, expanding sibling subtrees in parallel.
//!
//! Run with: `cargo run --release --example dynamic_generation`

use rdg_core::models::td::td_feeds;
use rdg_core::prelude::*;
use std::sync::Arc;

fn main() {
    let cfg = TdConfig {
        batch: 1,
        ..TdConfig::paper_default(1)
    };
    let recursive = build_td_recursive(&cfg).expect("build recursive TD");
    let iterative = build_td_iterative(&cfg).expect("build iterative TD");

    let exec = Executor::with_threads(2);
    let rec = Session::new(Arc::clone(&exec), recursive).expect("session");
    let itr = Session::with_params(exec, iterative, Arc::clone(rec.params())).expect("session");

    println!(
        "TD-TreeLSTM: hidden {}, depth cap {}, threshold {}",
        cfg.hidden, cfg.max_depth, cfg.threshold
    );
    println!();
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "seed", "nodes (rec)", "nodes (iter)", "agree?"
    );
    let mut sizes = Vec::new();
    for seed in 0..10u64 {
        let feeds = td_feeds(&cfg, seed);
        let nr = rec.run(feeds.clone()).expect("recursive run")[0]
            .as_i32_scalar()
            .expect("count");
        let ni = itr.run(feeds).expect("iterative run")[0]
            .as_i32_scalar()
            .expect("count");
        println!(
            "{seed:>6} {nr:>14} {ni:>14} {:>10}",
            if nr == ni { "yes" } else { "NO" }
        );
        sizes.push(nr);
    }
    println!();
    println!(
        "tree sizes range {}..{} — the structure is a function of the \
         computed hidden states, unknown before execution.",
        sizes.iter().min().expect("nonempty"),
        sizes.iter().max().expect("nonempty"),
    );
    println!(
        "TensorFlow-Fold-style batching needs the structure up front: \
         this model is the case it cannot express."
    );
}
