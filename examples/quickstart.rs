//! Quickstart: recursion as a first-class graph construct.
//!
//! Builds the paper's core abstraction pair — a recursive SubGraph plus
//! InvokeOps — for a function every programmer knows (Fibonacci), runs it on
//! the parallel executor, and shows the frame statistics that make the
//! "recursion = dataflow" story concrete.
//!
//! Run with: `cargo run --release --example quickstart`

use rdg_core::prelude::*;

fn main() {
    // --- 1. Define a recursive SubGraph (a function definition) ----------
    let mut mb = ModuleBuilder::new();
    let fib = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&fib, |b| {
        let n = b.input(0)?;
        let one = b.const_i32(1);
        let is_base = b.ile(n, one)?;
        let out = b.cond1(
            is_base,
            DType::I32,
            |b| b.identity(n),
            |b| {
                let one = b.const_i32(1);
                let two = b.const_i32(2);
                let n1 = b.isub(n, one)?;
                let n2 = b.isub(n, two)?;
                // Two InvokeOps with no mutual dependency: the executor
                // runs these sibling recursions in parallel.
                let f1 = b.invoke(&fib, &[n1])?[0];
                let f2 = b.invoke(&fib, &[n2])?[0];
                b.iadd(f1, f2)
            },
        )?;
        Ok(vec![out])
    })
    .expect("define fib");

    // --- 2. Use it from the main graph like any other op -----------------
    let n = mb.const_i32(18);
    let out = mb.invoke(&fib, &[n]).expect("invoke fib");
    mb.set_outputs(&[out[0]]).expect("set outputs");
    let module = mb.finish().expect("finish module");

    println!(
        "module: {} SubGraphs, {} total nodes",
        module.subgraphs.len(),
        module.total_nodes()
    );

    // --- 3. Execute on the parallel worker pool --------------------------
    let exec = Executor::with_threads(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    );
    let session = Session::new(exec, module).expect("session");
    let t0 = std::time::Instant::now();
    let result = session.run(vec![]).expect("run");
    let dt = t0.elapsed();

    println!("fib(18) = {}", result[0].as_i32_scalar().expect("scalar"));
    println!("elapsed: {dt:?}");
    println!("executor: {}", session.executor().stats().summary());
    println!();
    println!(
        "note the frame counts: every recursive call became a frame on the \
         shared ready queue — the same machinery that runs plain graphs."
    );
}
