//! Train a recursive TreeLSTM for sentiment analysis (the paper's headline
//! workload) on the synthetic movie-review corpus, reporting loss and
//! validation accuracy per epoch.
//!
//! Run with: `cargo run --release --example sentiment_treelstm`

use rdg_core::nn::metrics::accuracy;
use rdg_core::prelude::*;
use std::sync::Arc;

fn main() {
    let batch = 8;
    let data = Dataset::generate(DatasetConfig {
        vocab: 500,
        n_train: 160,
        n_valid: 64,
        min_len: 4,
        max_len: 18,
        seed: 2018,
        ..DatasetConfig::default()
    });
    println!(
        "corpus: {} train / {} valid sentences, mean length {:.1} words",
        data.split(Split::Train).len(),
        data.split(Split::Valid).len(),
        data.mean_len(Split::Train)
    );

    let mut cfg = ModelConfig::tiny(ModelKind::TreeLstm, batch);
    cfg.vocab = 500;
    cfg.embed = 16;
    cfg.hidden = 24;
    let forward = build_recursive(&cfg).expect("build model");
    let training = build_training_module(&forward, forward.main.outputs[0]).expect("autodiff");
    println!(
        "model: TreeLSTM, {} params, {} SubGraphs ({} gradient)",
        training.params.len(),
        training.subgraphs.len(),
        training
            .subgraphs
            .iter()
            .filter(|s| s.grad_of.is_some())
            .count()
    );

    let exec = Executor::with_threads(2);
    let train_sess = Session::new(Arc::clone(&exec), training).expect("train session");
    let infer_sess = Session::with_params(exec, forward, Arc::clone(train_sess.params()))
        .expect("infer session");
    let mut trainer = Trainer::new(train_sess, Adagrad::new(0.05));

    for epoch in 1..=5 {
        let t0 = std::time::Instant::now();
        let mut loss_sum = 0.0;
        let mut steps = 0;
        for chunk in data.batches(Split::Train, batch) {
            loss_sum += trainer.step(Dataset::feeds_for(chunk)).expect("step");
            steps += 1;
        }
        // Validation accuracy.
        let mut correct = 0.0;
        let mut total = 0.0;
        for chunk in data.batches(Split::Valid, batch) {
            let outs = infer_sess.run(Dataset::feeds_for(chunk)).expect("eval");
            let labels: Vec<i32> = chunk.iter().map(|i| i.label).collect();
            let labels = Tensor::from_i32([labels.len()], labels).expect("labels");
            correct += accuracy(&outs[1], &labels).expect("accuracy") * chunk.len() as f32;
            total += chunk.len() as f32;
        }
        let dt = t0.elapsed().as_secs_f64();
        println!(
            "epoch {epoch}: loss {:.4}, valid acc {:.1}%, {:.1} instances/s",
            loss_sum / steps as f32,
            100.0 * correct / total,
            (steps * batch) as f64 / dt,
        );
    }
}
