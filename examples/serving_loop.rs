//! Serving loop: a long-lived, QoS-aware admission-controlled TreeRNN
//! service.
//!
//! The serving story end to end: one `Session` on one worker pool, fronted
//! by per-class bounded admission lanes (`Session::serve`), fed mixed-depth
//! inference requests by **interactive** client threads and a **batch**
//! background client (`ServeClient::with_priority`). The dispatcher drains
//! the lanes in aged strict priority — interactive requests jump the batch
//! backlog, batch requests age past starvation — in waves whose size
//! adapts to observed service times, so burst load turns into queue wait
//! (visible per class in the stats below) instead of cache-thrashing
//! oversubscription. Finishes with a clean shutdown: clients stop, the
//! lanes drain, the dispatcher joins, and the final `ServeStats` must
//! account for every single request in every class.
//!
//! Run with: `cargo run --release --example serving_loop`
//! Environment: `RDG_QUICK=1` shrinks the run for CI smoke,
//! `RDG_THREADS=n` sizes the worker pool, `RDG_SECONDS=s` sets duration.

use rdg_core::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let quick = std::env::var("RDG_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    let threads: usize = std::env::var("RDG_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let seconds: f64 = std::env::var("RDG_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2.0 } else { 10.0 });
    let n_interactive = if quick { 2 } else { 3 };
    let n_batch = 1;

    // --- 1. A TreeRNN session and a pool of mixed-depth requests ---------
    let cfg = ModelConfig::paper_default(ModelKind::TreeRnn, 1);
    let data = Dataset::generate(DatasetConfig {
        vocab: cfg.vocab,
        n_train: 64,
        n_valid: 0,
        min_len: 4,
        max_len: if quick { 16 } else { 48 },
        shape: TreeShape::Moderate,
        seed: 20240715,
        ..DatasetConfig::default()
    });
    let module = build_recursive(&cfg).expect("build recursive TreeRNN");
    let session = Session::new(Executor::with_threads(threads), module).expect("session");
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));

    // --- 2. Open the QoS-aware serving loop ------------------------------
    let client = session.serve_with(ServeConfig {
        capacity: 64,
        ..ServeConfig::default()
    });
    println!(
        "serving_loop: {threads} workers, initial wave {}, lane capacity {}, \
         {n_interactive} interactive + {n_batch} batch clients, {seconds:.1}s",
        client.wave_target(),
        client.capacity(),
    );

    // --- 3. Client threads: closed-loop submit → wait, until told to stop.
    // Interactive clients use the default class; the batch client submits
    // through a Priority::Batch-defaulted clone and keeps a small ring of
    // requests in flight — a background stream the interactive traffic
    // must not be stuck behind.
    let stop = Arc::new(AtomicBool::new(false));
    let answered_interactive = Arc::new(AtomicU64::new(0));
    let answered_batch = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for c in 0..n_interactive {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        let answered = Arc::clone(&answered_interactive);
        let requests = requests.clone();
        workers.push(std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let feeds = requests[(c * 17 + i) % requests.len()].clone();
                i += 1;
                // Blocking admission = backpressure: a full lane slows
                // the client down instead of dropping its request.
                match client.submit(feeds) {
                    Ok(ticket) => {
                        ticket.wait().expect("interactive request failed");
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("admission failed: {e}"),
                }
            }
        }));
    }
    for b in 0..n_batch {
        let client = client.with_priority(Priority::Batch);
        let stop = Arc::clone(&stop);
        let answered = Arc::clone(&answered_batch);
        let requests = requests.clone();
        workers.push(std::thread::spawn(move || {
            const OUTSTANDING: usize = 8;
            let mut ring: std::collections::VecDeque<rdg_core::exec::ServeTicket> =
                std::collections::VecDeque::new();
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                if ring.len() >= OUTSTANDING {
                    ring.pop_front().unwrap().wait().expect("batch request");
                    answered.fetch_add(1, Ordering::Relaxed);
                }
                let feeds = requests[(b * 29 + i) % requests.len()].clone();
                i += 1;
                match client.submit(feeds) {
                    Ok(ticket) => ring.push_back(ticket),
                    Err(e) => panic!("batch admission failed: {e}"),
                }
            }
            while let Some(t) = ring.pop_front() {
                t.wait().expect("batch request failed");
                answered.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    // --- 4. The operator's view: periodic stats snapshots -----------------
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(seconds);
    let tick = Duration::from_secs_f64((seconds / 5.0).clamp(0.2, 2.0));
    while Instant::now() < deadline {
        std::thread::sleep(tick);
        let stats = client.stats();
        println!(
            "  t={:4.1}s  {}",
            t0.elapsed().as_secs_f64(),
            stats.summary()
        );
        for line in stats.class_summary().lines() {
            println!("           {line}");
        }
    }

    // --- 5. Clean shutdown: stop clients, drain the lanes, join. ----------
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("client thread");
    }
    client.shutdown();
    let stats = client.stats();
    let wall = t0.elapsed().as_secs_f64();
    println!("final: {}", stats.summary());
    for line in stats.class_summary().lines() {
        println!("       {line}");
    }
    let inter = &stats.classes[Priority::Interactive.index()];
    let batch = &stats.classes[Priority::Batch.index()];
    println!(
        "served {} requests in {wall:.1}s = {:.0} req/s \
         (interactive p50={:.0}µs p95={:.0}µs | batch p50={:.0}µs p95={:.0}µs)",
        stats.completed,
        stats.completed as f64 / wall,
        inter.total.p50_us,
        inter.total.p95_us,
        batch.total.p50_us,
        batch.total.p95_us,
    );
    // Accounting must close: every admitted request was answered, in every
    // class, and nothing remains queued. This loop submits without SLOs and
    // waits on every ticket, so every shed counter and the abandoned
    // counter must stay at exactly zero — the full lifecycle closure
    // `completed + failed + shed + shed_inflight + abandoned == submitted`
    // collapses to its PR 5 form.
    assert_eq!(stats.completed + stats.failed, stats.submitted);
    assert_eq!(stats.failed, 0, "no request may fail");
    assert_eq!(
        stats.shed + stats.shed_inflight + stats.shed_predicted + stats.abandoned,
        0,
        "no SLOs and no dropped tickets in this loop, so nothing sheds or abandons"
    );
    assert_eq!(
        inter.completed + inter.failed,
        inter.submitted,
        "interactive accounting closes"
    );
    assert_eq!(
        batch.completed + batch.failed,
        batch.submitted,
        "batch accounting closes"
    );
    assert_eq!(
        inter.completed,
        answered_interactive.load(Ordering::Relaxed),
        "every interactive completion was delivered to a client"
    );
    assert_eq!(
        batch.completed,
        answered_batch.load(Ordering::Relaxed),
        "every batch completion was delivered to a client"
    );
    assert!(
        batch.completed > 0,
        "the batch stream made progress under interactive load (no starvation)"
    );
    assert_eq!(stats.queue_depth, 0, "clean shutdown leaves no queued work");
    println!("serving_loop: OK");
}
