//! Serving loop: a long-lived, admission-controlled TreeRNN service.
//!
//! The serving story end to end: one `Session` on one worker pool, fronted
//! by a bounded admission queue (`Session::serve`), fed mixed-depth
//! inference requests by several client threads. The dispatcher keeps the
//! in-flight root frames at a small multiple of the worker count no matter
//! how many clients push, so burst load turns into queue wait (visible in
//! the p50/p95/p99 stats below) instead of cache-thrashing oversubscription.
//! Finishes with a clean shutdown: clients stop, the queue drains, the
//! dispatcher joins, and the final `ServeStats` must account for every
//! single request.
//!
//! Run with: `cargo run --release --example serving_loop`
//! Environment: `RDG_QUICK=1` shrinks the run for CI smoke,
//! `RDG_THREADS=n` sizes the worker pool, `RDG_SECONDS=s` sets duration.

use rdg_core::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let quick = std::env::var("RDG_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false);
    let threads: usize = std::env::var("RDG_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let seconds: f64 = std::env::var("RDG_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2.0 } else { 10.0 });
    let n_clients = if quick { 3 } else { 4 };

    // --- 1. A TreeRNN session and a pool of mixed-depth requests ---------
    let cfg = ModelConfig::paper_default(ModelKind::TreeRnn, 1);
    let data = Dataset::generate(DatasetConfig {
        vocab: cfg.vocab,
        n_train: 64,
        n_valid: 0,
        min_len: 4,
        max_len: if quick { 16 } else { 48 },
        shape: TreeShape::Moderate,
        seed: 20240715,
        ..DatasetConfig::default()
    });
    let module = build_recursive(&cfg).expect("build recursive TreeRNN");
    let session = Session::new(Executor::with_threads(threads), module).expect("session");
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));

    // --- 2. Open the admission-controlled serving loop -------------------
    let client = session.serve_with(ServeConfig {
        capacity: 64,
        batch_multiple: 4,
        ..ServeConfig::default()
    });
    println!(
        "serving_loop: {threads} workers, wave size {}, queue capacity {}, \
         {n_clients} clients, {seconds:.1}s",
        client.batch_target(),
        client.capacity(),
    );

    // --- 3. Client threads: closed-loop submit → wait, until told to stop.
    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for c in 0..n_clients {
        let client = client.clone();
        let stop = Arc::clone(&stop);
        let answered = Arc::clone(&answered);
        let requests = requests.clone();
        workers.push(std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let feeds = requests[(c * 17 + i) % requests.len()].clone();
                i += 1;
                // Blocking admission = backpressure: a full queue slows
                // the client down instead of dropping its request.
                match client.submit(feeds) {
                    Ok(ticket) => {
                        ticket.wait().expect("request failed");
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => panic!("admission failed: {e}"),
                }
            }
        }));
    }

    // --- 4. The operator's view: periodic stats snapshots -----------------
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(seconds);
    let tick = Duration::from_secs_f64((seconds / 5.0).clamp(0.2, 2.0));
    while Instant::now() < deadline {
        std::thread::sleep(tick);
        println!(
            "  t={:4.1}s  {}",
            t0.elapsed().as_secs_f64(),
            client.stats().summary()
        );
    }

    // --- 5. Clean shutdown: stop clients, drain the queue, join. ----------
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("client thread");
    }
    client.shutdown();
    let stats = client.stats();
    let wall = t0.elapsed().as_secs_f64();
    println!("final: {}", stats.summary());
    println!(
        "served {} requests in {wall:.1}s = {:.0} req/s \
         (total latency p50={:.0}µs p95={:.0}µs p99={:.0}µs)",
        stats.completed,
        stats.completed as f64 / wall,
        stats.total.p50_us,
        stats.total.p95_us,
        stats.total.p99_us,
    );
    // Accounting must close: every admitted request was answered, every
    // answer was observed by exactly one client, nothing remains queued.
    assert_eq!(stats.completed + stats.failed, stats.submitted);
    assert_eq!(stats.failed, 0, "no request may fail");
    assert_eq!(
        stats.completed,
        answered.load(Ordering::Relaxed),
        "every completion was delivered to a client"
    );
    assert_eq!(stats.queue_depth, 0, "clean shutdown leaves no queued work");
    println!("serving_loop: OK");
}
