//! Offline, API-compatible shim for the slice of `criterion` used by the
//! rdg workspace: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — per benchmark it calibrates an
//! iteration count to a target sample time, takes `sample_size` samples,
//! and prints median / min / max ns-per-iteration to stdout. There is no
//! statistical regression analysis, HTML report, or baseline storage.
//! Numbers it prints are comparable run-to-run on the same machine,
//! which is what the repo's `CHANGES.md` baselines rely on.
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark additionally appends one JSON object per line to it:
//! `{"bench":…,"median_ns":…,"min_ns":…,"max_ns":…,"samples":…,"iters":…,
//! "unix_time":…}`. When the group declared a [`Throughput`], the record
//! (and the stdout line) also carries the derived rate — e.g.
//! `"elements_per_sec":…` for [`Throughput::Elements`] — so ops/sec
//! metrics are first-class in the JSON trajectory. Future runs append, so
//! the file accumulates a machine-diffable trajectory of the same
//! benchmarks over time.
//! A relative path resolves against the bench process's working directory,
//! and `cargo bench` runs benches from the *package* directory (e.g.
//! `crates/bench`), not the workspace root — pass an absolute path
//! (`CRITERION_JSON="$PWD/results/…"`) to land records where you expect.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time per sample while calibrating.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

/// Work processed per iteration, used to derive a rate from the measured
/// time (API-compatible with criterion's `Throughput`).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (requests, instances, ops) per iteration → `elem/s`.
    Elements(u64),
    /// Bytes per iteration → `B/s`.
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 20, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Criterion requires `sample_size >= 10`; the shim just stores it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares how much work one iteration of the following benchmarks
    /// processes; measurements then also report a derived rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group (function name + parameter).
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample takes long
    // enough to time reliably.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
            break;
        }
        // Aim directly for the target based on the observed rate.
        let per_iter = b.elapsed.as_nanos().max(1) / iters as u128;
        let want = (TARGET_SAMPLE.as_nanos() / per_iter.max(1)).max(iters as u128 * 2);
        iters = want.min(1 << 24) as u64;
    }

    let mut ns_per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    ns_per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = ns_per_iter[ns_per_iter.len() / 2];
    let min = ns_per_iter[0];
    let max = ns_per_iter[ns_per_iter.len() - 1];
    // Derived rate from the declared per-iteration work, median-based.
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => (n as f64 * 1e9 / median.max(1e-9), "elem/s"),
        Throughput::Bytes(n) => (n as f64 * 1e9 / median.max(1e-9), "B/s"),
    });
    let rate_str = match rate {
        Some((v, unit)) => format!("  {v:.1} {unit}"),
        None => String::new(),
    };
    println!(
        "{label:<50} median {} (min {}, max {}) [{} samples x {} iters]{rate_str}",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        sample_size,
        iters,
    );
    record_json(label, median, min, max, sample_size, iters, throughput);
}

/// Appends one JSON line for the finished benchmark to the file named by
/// `CRITERION_JSON`, if set. Errors are ignored: recording must never
/// break a measurement run.
/// Escapes a benchmark label for embedding in a JSON string literal:
/// quotes and backslashes are escaped, control characters become spaces.
///
/// Private by design — the shim's public surface must stay a drop-in for
/// real criterion. `rdg_bench::json_escape` is the same logic for the
/// figure/table records; a fix to either should be mirrored in the other.
fn escape_json_label(label: &str) -> String {
    label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn record_json(
    label: &str,
    median: f64,
    min: f64,
    max: f64,
    samples: usize,
    iters: u64,
    throughput: Option<Throughput>,
) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped = escape_json_label(label);
    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Optional first-class rate field (",\"elements_per_sec\":…").
    let rate_field = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                ",\"elements_per_sec\":{:.1}",
                n as f64 * 1e9 / median.max(1e-9)
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                ",\"bytes_per_sec\":{:.1}",
                n as f64 * 1e9 / median.max(1e-9)
            )
        }
        None => String::new(),
    };
    if let Some(dir) = std::path::Path::new(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        use std::io::Write as _;
        let _ = writeln!(
            f,
            "{{\"bench\":\"{escaped}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{samples},\"iters\":{iters}{rate_field},\"unix_time\":{unix_time}}}"
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn json_labels_are_escaped() {
        // The escaping used by record_json must neutralize quotes,
        // backslashes, and control characters so the emitted line stays one
        // valid JSON object.
        let escaped = escape_json_label("group/\"quoted\\label\"\n");
        assert_eq!(escaped, "group/\\\"quoted\\\\label\\\" ");
        assert_eq!(escape_json_label("plain/123"), "plain/123");
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("8x8").label(), "8x8");
    }

    #[test]
    fn throughput_group_runs_with_declared_elements() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_throughput");
        g.sample_size(2);
        g.throughput(Throughput::Elements(64));
        let mut ran = false;
        g.bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(2 + 2));
        });
        g.finish();
        assert!(ran);
    }
}
