//! Offline, API-compatible shim for the slice of `crossbeam-channel` 0.5
//! used by the rdg workspace: `unbounded`/`bounded` MPMC channels with
//! cloneable `Sender`s *and* `Receiver`s (std's mpsc `Receiver` is neither
//! `Clone` nor `Sync`, which the executor's shared work queue needs).
//!
//! Implemented as a `Mutex<VecDeque>` with two condvars. Throughput is
//! adequate for the executor's coarse-grained task channel; it is not a
//! lock-free replacement.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Creates an unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a bounded MPMC channel holding at most `cap` messages.
///
/// Unlike crossbeam, `cap == 0` is approximated as capacity 1 rather
/// than a rendezvous channel; the workspace never uses zero capacity.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> Sender<T> {
    /// Blocking send; fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            let full = st.cap.is_some_and(|c| st.queue.len() >= c);
            if !full {
                st.queue.push_back(value);
                drop(st);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            st = match self.shared.not_full.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; fails only when the channel is empty and every
    /// sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = match self.shared.not_empty.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _timed_out) = match self.shared.not_empty.wait_timeout(st, deadline - now) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            st = g;
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn mpmc_roundtrip() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let consumers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|r| {
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = r.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for i in 1..=100u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let h = thread::spawn(move || tx.send(3)); // blocks until a recv
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        h.join().unwrap().unwrap();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }
}
