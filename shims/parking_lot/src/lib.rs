//! Offline, API-compatible shim for the slice of `parking_lot` 0.12 used
//! by the rdg workspace: `Mutex`, `RwLock` and `Condvar` with the
//! panic-free (non-`Result`) lock API, implemented over `std::sync`.
//!
//! Poisoning is deliberately ignored (`parking_lot` has no poisoning):
//! a poisoned std lock is recovered with `into_inner`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take ownership of the
    // std guard (std's wait consumes it) and put it back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std doesn't report whether a thread was woken; parking_lot does.
        // Callers in this workspace ignore the return value.
        false
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Result of a [`Condvar::wait_for`]: whether the wait hit its timeout
/// (mirrors `parking_lot::WaitTimeoutResult`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while *g == 0 {
                cv.wait(&mut g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = 42;
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path: nobody notifies, the wait must return with
        // `timed_out() == true` and the guard reacquired.
        {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            let r = cv.wait_for(&mut g, std::time::Duration::from_millis(10));
            assert!(r.timed_out());
            assert!(!*g);
        }
        // Wake path: a notifier flips the flag before the deadline.
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                let r = cv.wait_for(&mut g, std::time::Duration::from_secs(5));
                if r.timed_out() {
                    return false;
                }
            }
            true
        });
        thread::sleep(std::time::Duration::from_millis(20));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap(), "waiter saw the notify before timeout");
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
