//! Offline, API-compatible shim for the slice of `proptest` used by the
//! rdg workspace: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`,
//! [`strategy::Just`],
//! numeric-range and tuple strategies, and `prop::collection::vec`.
//!
//! Differences from upstream: no shrinking, no persisted failure seeds,
//! and a fixed deterministic case count (`CASES`, currently 48) seeded
//! from the test name — failures therefore reproduce exactly across runs.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of upstream's `prelude::prop` namespace module.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Number of generated cases per `proptest!` test.
pub const CASES: u64 = 48;

/// Runs `body` once per case with a deterministic RNG derived from
/// `name`. Used by the `proptest!` macro; not public API upstream.
pub fn run_cases<F: FnMut(&mut test_runner::TestRng)>(name: &str, mut body: F) {
    for case in 0..CASES {
        let mut rng = test_runner::TestRng::for_case(name, case);
        body(&mut rng);
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($pat:pat in $strat:expr) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategy = $strat;
                $crate::run_cases(stringify!($name), |rng| {
                    let $pat = $crate::strategy::Strategy::generate(&strategy, rng);
                    $body
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}
