//! The [`Strategy`] trait and primitive strategies: numeric ranges,
//! [`Just`], tuples, `prop_map` and `prop_flat_map` combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values for property tests.
///
/// Upstream proptest separates strategies from value *trees* to support
/// shrinking; this shim generates values directly and never shrinks.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f32() * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f32() as f64 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}
