//! Deterministic RNG for test-case generation (SplitMix64, seeded from
//! an FNV-1a hash of the test name and the case index).

#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 24 bits of precision.
    pub fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
