//! Offline, API-compatible shim for the slice of `rand` 0.8 that the rdg
//! workspace uses: `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng`.
//!
//! `StdRng` here is SplitMix64 — statistically fine for test-data
//! generation and weight init, deterministic across platforms, and *not*
//! stream-compatible with upstream `rand` (seeds produce different
//! sequences than the real crate).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, matching upstream behavior.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub use rngs::StdRng;

/// Ranges that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    // 24 uniform mantissa bits in [0, 1).
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f32(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i32 = a.gen_range(-5..5);
            assert_eq!(x, b.gen_range(-5..5));
            assert!((-5..5).contains(&x));
            let f = a.gen_range(0.25f32..0.75);
            let g = b.gen_range(0.25f32..0.75);
            assert_eq!(f, g);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
