//! `rdg_lint` — static analysis over the built-in model zoo.
//!
//! Runs the plan-time analyzer (interprocedural shape/dtype inference,
//! recursion well-foundedness, liveness, batchability) over every shipped
//! model — forward and training twins — plus the quickstart fib module,
//! and reports structured diagnostics.
//!
//! ```text
//! rdg_lint [NAME-FILTER ...] [--deny-warnings] [--quiet]
//!          [--json <path|->] [--dot <dir>]
//! ```
//!
//! * `--deny-warnings` — exit nonzero on warnings too (CI mode).
//! * `--json` — write a machine-readable diagnostics report.
//! * `--dot` — write one annotated Graphviz file per model; diagnosed
//!   nodes are colored (errors `lightcoral`, warnings `orange`).
//! * Positional arguments filter the zoo by substring match.
//!
//! Exit code: `0` clean under the active policy, `1` denied diagnostics,
//! `2` usage error.

use rdg::autodiff::build_training_module;
use rdg::graph::analyze::{analyze_module, AnalysisConfig, AnalysisReport};
use rdg::graph::dot::module_to_dot_annotated;
use rdg::graph::{Module, ModuleBuilder};
use rdg::models::{
    build_iterative, build_recursive, build_td_iterative, build_td_recursive, ModelConfig,
    ModelKind, TdConfig,
};
use rdg::tensor::DType;

/// The fib quickstart from the crate docs: the smallest recursive module.
fn fib_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let fib = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&fib, |b| {
        let n = b.input(0)?;
        let one = b.const_i32(1);
        let base = b.ile(n, one)?;
        let out = b.cond1(
            base,
            DType::I32,
            |b| b.identity(n),
            |b| {
                let a = b.isub(n, one)?;
                let two = b.const_i32(2);
                let c = b.isub(n, two)?;
                let fa = b.invoke(&fib, &[a])?[0];
                let fc = b.invoke(&fib, &[c])?[0];
                b.iadd(fa, fc)
            },
        )?;
        Ok(vec![out])
    })
    .expect("fib body");
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&fib, &[n]).expect("fib invoke")[0];
    mb.set_outputs(&[out]).expect("outputs");
    mb.finish().expect("fib module")
}

/// Builds the zoo: every shipped model (tiny config, batch 4) in forward
/// and training form, the TD models, and the quickstart fib.
fn zoo() -> Vec<(String, Module)> {
    let mut out: Vec<(String, Module)> = Vec::new();
    for (kind, kname) in [
        (ModelKind::TreeRnn, "tree-rnn"),
        (ModelKind::Rntn, "rntn"),
        (ModelKind::TreeLstm, "tree-lstm"),
    ] {
        let cfg = ModelConfig::tiny(kind, 4);
        for (style, build) in [
            (
                "rec",
                build_recursive as fn(&ModelConfig) -> rdg::graph::Result<Module>,
            ),
            (
                "itr",
                build_iterative as fn(&ModelConfig) -> rdg::graph::Result<Module>,
            ),
        ] {
            let m = build(&cfg).expect("model build");
            let t = build_training_module(&m, m.main.outputs[0]).expect("training build");
            out.push((format!("{kname}-{style}"), m));
            out.push((format!("{kname}-{style}-train"), t));
        }
    }
    let td = TdConfig::tiny(4);
    let mr = build_td_recursive(&td).expect("td rec");
    let mi = build_td_iterative(&td).expect("td itr");
    // TD outputs: [0] generated-node count (i32), [1] mean state (f32 loss).
    let tr = build_training_module(&mr, mr.main.outputs[1]).expect("td rec train");
    let ti = build_training_module(&mi, mi.main.outputs[1]).expect("td itr train");
    out.push(("td-treelstm-rec".to_string(), mr));
    out.push(("td-treelstm-rec-train".to_string(), tr));
    out.push(("td-treelstm-itr".to_string(), mi));
    out.push(("td-treelstm-itr-train".to_string(), ti));
    out.push(("quickstart-fib".to_string(), fib_module()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report_json(name: &str, m: &Module, report: &AnalysisReport) -> String {
    let mut diags = Vec::new();
    for d in &report.diagnostics {
        let ports = d
            .ports
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        diags.push(format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"graph\":\"{}\",\"node\":{},\"ports\":[{}],\"message\":\"{}\"}}",
            d.severity,
            d.code,
            json_escape(&m.graph_name(d.graph_ref())),
            d.node.map(|n| n.0.to_string()).unwrap_or_else(|| "null".to_string()),
            ports,
            json_escape(&d.message),
        ));
    }
    format!(
        "{{\"model\":\"{}\",\"errors\":{},\"warnings\":{},\"hot_coverage\":{:.4},\"diagnostics\":[{}]}}",
        json_escape(name),
        report.errors().count(),
        report.warnings().count(),
        report.batchability.hot_coverage(),
        diags.join(",")
    )
}

fn main() {
    let mut deny_warnings = false;
    let mut quiet = false;
    let mut json_path: Option<String> = None;
    let mut dot_dir: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "--quiet" | "-q" => quiet = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => usage_error("--json requires a path (or '-')"),
            },
            "--dot" => match args.next() {
                Some(d) => dot_dir = Some(d),
                None => usage_error("--dot requires a directory"),
            },
            "--help" | "-h" => {
                println!(
                    "rdg_lint [NAME-FILTER ...] [--deny-warnings] [--quiet] \
                     [--json <path|->] [--dot <dir>]"
                );
                return;
            }
            f if !f.starts_with('-') => filters.push(f.to_string()),
            other => usage_error(&format!("unknown flag '{other}'")),
        }
    }

    let cfg = if deny_warnings {
        AnalysisConfig::deny_all()
    } else {
        AnalysisConfig::default()
    };

    if let Some(dir) = &dot_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("rdg_lint: cannot create {dir}: {e}");
            std::process::exit(2);
        }
    }

    let mut total_denied = 0usize;
    let mut model_jsons = Vec::new();
    for (name, m) in zoo() {
        if !filters.is_empty() && !filters.iter().any(|f| name.contains(f.as_str())) {
            continue;
        }
        let report = analyze_module(&m);
        let denied = report.denied(&cfg).count();
        total_denied += denied;
        if !quiet {
            for d in &report.diagnostics {
                println!("{name}: {d}");
            }
        }
        println!(
            "{name}: {} error(s), {} warning(s), hot fusion coverage {:.0}%{}",
            report.errors().count(),
            report.warnings().count(),
            100.0 * report.batchability.hot_coverage(),
            if denied > 0 { "  [DENIED]" } else { "" },
        );
        if let Some(dir) = &dot_dir {
            let path = format!("{dir}/{name}.dot");
            if let Err(e) = std::fs::write(&path, module_to_dot_annotated(&m, &report.diagnostics))
            {
                eprintln!("rdg_lint: cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        model_jsons.push(report_json(&name, &m, &report));
    }

    if let Some(path) = &json_path {
        let body = format!(
            "{{\"deny_warnings\":{deny_warnings},\"denied\":{total_denied},\"models\":[{}]}}\n",
            model_jsons.join(",")
        );
        if path == "-" {
            print!("{body}");
        } else if let Err(e) = std::fs::write(path, body) {
            eprintln!("rdg_lint: cannot write {path}: {e}");
            std::process::exit(2);
        }
    }

    if total_denied > 0 {
        eprintln!("rdg_lint: {total_denied} denied diagnostic(s)");
        std::process::exit(1);
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("rdg_lint: {msg}");
    std::process::exit(2);
}
