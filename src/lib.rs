//! Workspace facade: re-exports [`rdg_core`] so the root package can own
//! the cross-crate integration tests in `tests/` and the runnable
//! `examples/`. Use `rdg_core` (or the individual layer crates) directly
//! from library code; depend on `rdg` only for the examples/tests surface.

pub use rdg_core::*;
