//! Soundness of the shape analyzer against the real executor.
//!
//! Random constant-leaf expression graphs are built with the analyzer
//! *disabled*, then analyzed. The contract, both directions:
//!
//! * analyzer-clean (zero errors) ⇒ the module plans and executes without
//!   any runtime error — no kernel shape failure slips past the analyzer;
//! * analyzer errors ⇒ the plan-time gate ([`ModulePlan::new`] via
//!   [`Session::new`]) rejects the module before a single frame spawns.

use proptest::prelude::*;
use rdg::exec::{ExecError, Executor, Session};
use rdg::graph::analyze::{analyze_module, AnalysisConfig};
use rdg::graph::{GraphError, ModuleBuilder, Wire};
use rdg::tensor::Tensor;

/// Leaf pool: shapes chosen so some pairs are compatible (element-wise or
/// matmul) and some are not.
fn leaf(mb: &mut ModuleBuilder, which: u8) -> Wire {
    let t = match which % 5 {
        0 => Tensor::from_f32(vec![2, 3], vec![0.25; 6]).unwrap(),
        1 => Tensor::from_f32(vec![3, 2], vec![0.5; 6]).unwrap(),
        2 => Tensor::from_f32(vec![2, 2], vec![0.75; 4]).unwrap(),
        3 => Tensor::from_f32(vec![3], vec![1.0; 3]).unwrap(),
        _ => Tensor::scalar_f32(2.0),
    };
    mb.constant(t)
}

proptest! {
    #[test]
    fn analyzer_clean_graphs_execute(
        (leaves, ops) in (
            prop::collection::vec(0u8..5, 2..5),
            prop::collection::vec((0u8..8, 0usize..64, 0usize..64), 1..12),
        )
    ) {
        let mut mb = ModuleBuilder::new();
        // Bypass the build-time gate: this test *wants* bad modules to get
        // through so it can check the analyzer verdict against reality.
        mb.set_analysis(AnalysisConfig::allow_all());
        let mut pool: Vec<Wire> = leaves.iter().map(|&w| leaf(&mut mb, w)).collect();
        for &(op, ai, bi) in &ops {
            let a = pool[ai % pool.len()];
            let b = pool[bi % pool.len()];
            let r = match op {
                0 => mb.add(a, b),
                1 => mb.sub(a, b),
                2 => mb.mul(a, b),
                3 => mb.matmul(a, b),
                4 => mb.concat_cols(a, b),
                5 => mb.tanh(a),
                6 => mb.transpose(a),
                _ => mb.sum_all(a),
            };
            pool.push(r.unwrap());
        }
        let last = *pool.last().unwrap();
        mb.set_outputs(&[last]).unwrap();
        let m = mb.finish().unwrap();

        let clean = analyze_module(&m).errors().count() == 0;
        let session = Session::new(Executor::with_threads(1), m);
        if clean {
            let s = session.expect("analyzer-clean module must plan");
            let out = s.run(vec![]);
            prop_assert!(
                out.is_ok(),
                "analyzer-clean module failed at run time: {:?}",
                out.err()
            );
        } else {
            // The plan-time gate must stop it before execution.
            match session {
                Err(ExecError::Graph(GraphError::Analysis { .. })) => {}
                Err(e) => prop_assert!(false, "expected Analysis rejection, got {e}"),
                Ok(_) => prop_assert!(false, "dirty module planned without rejection"),
            }
        }
    }
}
