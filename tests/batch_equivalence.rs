//! Cross-request batch fusion must change the schedule, not the math.
//!
//! The executor's dispatch-time fuser stacks same-shape kernels from
//! concurrent serving requests into one matmul-class call and scatters the
//! result back per request. The stacking is row/column concatenation with
//! the kernel loop order preserved, so fused outputs are **bit-for-bit**
//! identical to scalar execution — not merely `allclose`. These tests pin
//! that contract end to end, with the scalar path (fusion off, the
//! pre-PR-8 executor behavior) as the oracle:
//!
//! 1. A property sweep over random tree shapes, depths, and model kinds
//!    (TreeRNN / RNTN / TreeLSTM — covering every fusable op: `MatMul`,
//!    `AddBias`, `Bilinear`, and the transposed variants) comparing every
//!    output tensor of every request bitwise.
//! 2. A deterministic saturation test that also asserts fusion actually
//!    *engages* (groups form, instances fuse) and that per-class
//!    accounting stays closed with batching on — fused members resolve
//!    their own tickets exactly once.

use proptest::prelude::*;
use rdg_core::prelude::*;

const KINDS: [ModelKind; 3] = [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm];

/// Build a per-instance session plus one feed vector per tree.
fn fixture(
    kind: ModelKind,
    seed: u64,
    n: usize,
    max_len: usize,
    shape: TreeShape,
) -> (Session, Vec<Vec<Tensor>>) {
    let cfg = ModelConfig::tiny(kind, 1);
    let data = Dataset::generate(DatasetConfig {
        vocab: cfg.vocab,
        n_train: n,
        n_valid: 0,
        min_len: 3,
        max_len,
        shape,
        seed,
        ..DatasetConfig::default()
    });
    let m = build_recursive(&cfg).expect("build recursive");
    let sess = Session::new(Executor::with_threads(2), m).expect("session");
    let requests = Dataset::feeds_per_instance(data.split(Split::Train));
    (sess, requests)
}

/// Exact equality: same shapes, same f32 bit patterns. `allclose` would
/// hide a fusion that silently reordered an accumulation.
fn assert_bit_equal(scalar: &[Tensor], fused: &[Tensor], ctx: &str) {
    assert_eq!(scalar.len(), fused.len(), "{ctx}: output arity differs");
    for (o, (a, b)) in scalar.iter().zip(fused).enumerate() {
        assert_eq!(a.shape(), b.shape(), "{ctx}: output {o} shape differs");
        let (xa, xb) = (a.f32s().expect("f32 output"), b.f32s().expect("f32 output"));
        for (j, (va, vb)) in xa.iter().zip(xb).enumerate() {
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{ctx}: output {o}[{j}] differs: scalar {va} vs fused {vb}"
            );
        }
    }
}

proptest! {
    /// Random trees, random depths, random shapes, all three model kinds:
    /// serving with cross-request batching on returns bit-identical
    /// outputs to one-at-a-time scalar runs of the same session.
    #[test]
    fn fused_serving_matches_scalar_bitwise(
        (kind_idx, seed, max_len, balanced) in (0usize..3, 0u64..1_000_000, 5usize..14, 0u8..2)
    ) {
        let kind = KINDS[kind_idx];
        let shape = if balanced == 0 { TreeShape::Moderate } else { TreeShape::Balanced };
        let (sess, requests) = fixture(kind, seed, 6, max_len, shape);
        // Oracle first: bare runs never fuse (executor default is scalar).
        let scalar: Vec<Vec<Tensor>> = requests
            .iter()
            .map(|r| sess.run(r.clone()).expect("scalar run"))
            .collect();
        // Then the same requests, all in flight at once, batching on
        // (the serving default).
        let client = sess.serve();
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| client.submit(r.clone()).expect("admit"))
            .collect();
        let fused: Vec<Vec<Tensor>> = tickets
            .into_iter()
            .map(|t| t.wait().expect("fused request"))
            .collect();
        let st = client.stats();
        client.shutdown();
        for (i, (s, f)) in scalar.iter().zip(&fused).enumerate() {
            assert_bit_equal(s, f, &format!("{kind:?} seed {seed} request {i}"));
        }
        // Tickets resolve exactly once whether or not their kernels fused.
        prop_assert_eq!(st.submitted, st.completed);
        prop_assert_eq!(st.failed, 0);
        prop_assert!(st.fusion_instances <= st.fusion_eligible,
            "fused more instances than were eligible");
    }
}

/// Saturating same-shape traffic must actually form groups: 32 identical
/// balanced trees offered at once. Also pins per-class accounting closure
/// with batching on, and the counter algebra of the fusion telemetry.
#[test]
fn fusion_engages_under_saturation_and_accounting_closes() {
    let (sess, requests) = fixture(ModelKind::TreeRnn, 20240808, 32, 16, TreeShape::Balanced);
    let scalar: Vec<Vec<Tensor>> = requests
        .iter()
        .map(|r| sess.run(r.clone()).expect("scalar run"))
        .collect();
    let client = sess.serve_with(ServeConfig {
        capacity: 64,
        ..ServeConfig::default()
    });
    // Mixed classes: fusion groups freely across QoS lanes (class shapes
    // admission order, not kernel compatibility).
    let classed: Vec<_> = Priority::ALL
        .iter()
        .map(|&p| client.with_priority(p))
        .collect();
    let tickets: Vec<_> = requests
        .iter()
        .enumerate()
        .map(|(i, r)| classed[i % classed.len()].submit(r.clone()).expect("admit"))
        .collect();
    let fused: Vec<Vec<Tensor>> = tickets
        .into_iter()
        .map(|t| t.wait().expect("fused request"))
        .collect();
    let st = client.stats();
    client.shutdown();

    for (i, (s, f)) in scalar.iter().zip(&fused).enumerate() {
        assert_bit_equal(s, f, &format!("saturated request {i}"));
    }
    // The whole point: groups formed and fused real work.
    assert!(st.fusion_eligible > 0, "no batchable instances observed");
    assert!(
        st.fusion_groups > 0,
        "saturating identical-shape traffic formed no fused groups"
    );
    assert!(
        st.fusion_instances >= 2 * st.fusion_groups,
        "every fused group stacks at least two instances \
         ({} instances across {} groups)",
        st.fusion_instances,
        st.fusion_groups
    );
    assert!(st.fusion_instances <= st.fusion_eligible);
    let f = st.fused_fraction();
    assert!((0.0..=1.0).contains(&f), "fused fraction {f} out of range");
    // Accounting closure, per class and aggregate, with batching on.
    assert_eq!(st.submitted, 32);
    assert_eq!(st.completed + st.failed + st.abandoned, st.submitted);
    assert_eq!(st.failed, 0);
    for c in &st.classes {
        assert_eq!(
            c.completed + c.failed + c.abandoned,
            c.submitted,
            "class accounting must close exactly with batching on"
        );
        assert_eq!(
            c.shed + c.shed_inflight + c.shed_predicted,
            0,
            "no SLO traffic here, so fusion must not invent sheds"
        );
    }
}
