//! Data-parallel training (paper Figure 10).

use rdg_core::cluster::{model_step, run_real, ClusterConfig, NetModel};
use rdg_core::prelude::*;

fn data() -> Dataset {
    Dataset::generate(DatasetConfig {
        vocab: 100,
        n_train: 32,
        n_valid: 0,
        min_len: 3,
        max_len: 8,
        ..DatasetConfig::default()
    })
}

#[test]
fn synchronous_sgd_with_two_machines_trains() {
    let cfg = ClusterConfig {
        n_machines: 2,
        threads_per_machine: 1,
        model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
        steps: 4,
        lr: 0.05,
    };
    let report = run_real(&cfg, &data()).unwrap();
    assert!(report.instances_per_sec > 0.0);
    assert!(report.final_loss.is_finite());
    assert_eq!(report.machine0_compute.len(), 4);
}

#[test]
fn shared_parameters_receive_all_machines_updates() {
    // Train 1-machine and 2-machine configurations from the same init with
    // the same total batch: both must decrease loss (updates flow).
    let d = data();
    let one = ClusterConfig {
        n_machines: 1,
        threads_per_machine: 2,
        model: ModelConfig::tiny(ModelKind::TreeRnn, 4),
        steps: 6,
        lr: 0.1,
    };
    let two = ClusterConfig {
        n_machines: 2,
        threads_per_machine: 1,
        model: ModelConfig::tiny(ModelKind::TreeRnn, 2),
        steps: 6,
        lr: 0.1,
    };
    let r1 = run_real(&one, &d).unwrap();
    let r2 = run_real(&two, &d).unwrap();
    assert!(r1.final_loss.is_finite() && r2.final_loss.is_finite());
}

#[test]
fn virtual_time_model_reproduces_linear_scaling_shape() {
    // Paper Figure 10: 1.00× → 1.85× → 3.65× → 7.34× for 1/2/4/8 machines.
    // With low-variance compute and a 10GbE-class network, the model must
    // land in the same near-linear regime.
    let samples: Vec<f64> = (0..64)
        .map(|i| 2.5 + 0.12 * ((i * 17 % 11) as f64 / 11.0 - 0.5))
        .collect();
    let net = NetModel::default();
    let param_bytes = 4.0 * 1_000_000.0; // ~1M parameters, f32
    let base = model_step(&samples, 1, 25, &net, param_bytes).1;
    let mut speedups = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let thr = model_step(&samples, n, 25, &net, param_bytes).1;
        speedups.push(thr / base);
    }
    assert!((speedups[0] - 1.0).abs() < 1e-9);
    assert!(
        speedups[1] > 1.7 && speedups[1] <= 2.0,
        "2 machines: {:.2}×",
        speedups[1]
    );
    assert!(
        speedups[2] > 3.3 && speedups[2] <= 4.0,
        "4 machines: {:.2}×",
        speedups[2]
    );
    assert!(
        speedups[3] > 6.5 && speedups[3] <= 8.0,
        "8 machines: {:.2}×",
        speedups[3]
    );
}
