//! Batched training correctness: `run_training_batch(N)` must accumulate
//! exactly the gradients of N sequential per-instance runs, and the
//! concurrent launch must beat the sequential loop in wall-clock time when
//! real parallel hardware is available.

use rdg_core::exec::GradStore;
use rdg_core::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn moderate_batch(n: usize, leaves: usize, seed: u64) -> Vec<Instance> {
    let data = Dataset::generate(DatasetConfig {
        vocab: 100,
        n_train: n,
        n_valid: 0,
        min_len: leaves,
        max_len: leaves,
        shape: TreeShape::Moderate,
        seed,
        ..DatasetConfig::default()
    });
    data.split(Split::Train).to_vec()
}

/// Builds a fresh per-instance TreeRNN training session (deterministic
/// parameter init comes from the model seed, so two sessions built the
/// same way start from identical weights).
fn training_session(threads: usize) -> Session {
    let cfg = ModelConfig::tiny(ModelKind::TreeRnn, 1);
    let m = build_recursive(&cfg).unwrap();
    let t = build_training_module(&m, m.main.outputs[0]).unwrap();
    Session::new(Executor::with_threads(threads), t).unwrap()
}

fn assert_grads_close(a: &GradStore, b: &GradStore, n_params: usize, ctx: &str) {
    for i in 0..n_params {
        let pid = ParamId(i as u32);
        match (a.get(pid), b.get(pid)) {
            (None, None) => {}
            (Some(ga), Some(gb)) => {
                let va = ga.f32s().unwrap();
                let vb = gb.f32s().unwrap();
                assert_eq!(va.len(), vb.len(), "{ctx}: param {i} length");
                for (k, (x, y)) in va.iter().zip(vb.iter()).enumerate() {
                    let tol = 1e-4f32 * x.abs().max(y.abs()).max(1.0);
                    assert!(
                        (x - y).abs() <= tol,
                        "{ctx}: param {i}[{k}]: sequential {x} vs batch {y}"
                    );
                }
            }
            (sa, sb) => panic!(
                "{ctx}: param {i} presence mismatch: sequential {} vs batch {}",
                sa.is_some(),
                sb.is_some()
            ),
        }
    }
}

#[test]
fn batched_gradients_equal_sum_of_sequential_runs() {
    let insts = moderate_batch(6, 10, 41);
    let feeds_list = Dataset::feeds_per_instance(&insts);

    // Reference: N sequential per-instance runs, gradients summed by hand.
    let seq = training_session(2);
    let n_params = seq.module().params.len();
    let reference = GradStore::new(n_params);
    for feeds in &feeds_list {
        seq.run_training(feeds.clone()).unwrap();
        for i in 0..n_params {
            let pid = ParamId(i as u32);
            if let Some(g) = seq.grads().get(pid) {
                reference.accumulate(pid, &g).unwrap();
            }
        }
    }

    // Same instances as one concurrent batch on identically-seeded params.
    let batch = training_session(2);
    let outs = batch.run_training_batch(feeds_list).unwrap();
    assert_eq!(outs.len(), 6, "one output set per instance");
    for o in &outs {
        assert!(o[0].as_f32_scalar().unwrap().is_finite());
    }
    assert_grads_close(&reference, batch.grads(), n_params, "6-instance batch");
}

#[test]
fn batched_gradients_match_when_reusing_one_session() {
    // Same check through a single session: a batch step after sequential
    // steps must not be contaminated by the earlier runs' state (the
    // per-run cache isolation and the step-start clear).
    let insts = moderate_batch(4, 8, 97);
    let feeds_list = Dataset::feeds_per_instance(&insts);
    let sess = training_session(2);
    let n_params = sess.module().params.len();
    let reference = GradStore::new(n_params);
    for feeds in &feeds_list {
        sess.run_training(feeds.clone()).unwrap();
        for i in 0..n_params {
            let pid = ParamId(i as u32);
            if let Some(g) = sess.grads().get(pid) {
                reference.accumulate(pid, &g).unwrap();
            }
        }
    }
    sess.run_training_batch(feeds_list).unwrap();
    assert_grads_close(&reference, sess.grads(), n_params, "reused session");
}

#[test]
fn batch_run_beats_sequential_loop_on_parallel_hardware() {
    // The acceptance measurement: an 8-instance Moderate-tree minibatch as
    // one concurrent batch vs 8 sequential training runs through the same
    // ≥2-worker-thread session. The sequential baseline is itself parallel
    // (one run's sibling subtrees already spread over the workers), so how
    // much the batch can win back scales with how many cores that
    // intra-run parallelism leaves idle: nothing on 1 core (measured
    // ~0.96x = parity, which bounds the submit/per-run-cache overhead),
    // a thin margin on 2–3 cores, and the issue's full ≥1.5x on ≥4 cores
    // (every tree's root is serial, so one run cannot fill the pool).
    //
    // The ratio is always measured and printed; the hard wall-clock gate
    // arms only under RDG_ASSERT_SPEEDUP=1 — a timing threshold must be
    // opted into on controlled multi-core hardware, not sprung on shared
    // CI tenancy where neither tier has ever been validated.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = cores.clamp(2, 4);
    let insts = moderate_batch(8, 24, 7);
    let feeds_list = Dataset::feeds_per_instance(&insts);
    let sess = training_session(threads);

    // Warm-up both paths (plan caches, frame-core pools, allocator).
    for feeds in &feeds_list {
        sess.run_training(feeds.clone()).unwrap();
    }
    sess.run_training_batch(feeds_list.clone()).unwrap();

    let reps = 5;
    let mut seq_best = f64::INFINITY;
    let mut batch_best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        for feeds in &feeds_list {
            sess.run_training(feeds.clone()).unwrap();
        }
        seq_best = seq_best.min(t0.elapsed().as_secs_f64());

        let t0 = Instant::now();
        sess.run_training_batch(feeds_list.clone()).unwrap();
        batch_best = batch_best.min(t0.elapsed().as_secs_f64());
    }
    let speedup = seq_best / batch_best;
    eprintln!(
        "8-instance minibatch: sequential {:.2} ms, batch {:.2} ms, speedup {speedup:.2}x \
         ({threads} worker threads, {cores} cores)",
        seq_best * 1e3,
        batch_best * 1e3
    );
    let armed = std::env::var("RDG_ASSERT_SPEEDUP")
        .map(|v| v == "1")
        .unwrap_or(false);
    if armed {
        let floor = if cores >= 4 {
            1.5
        } else if cores >= 2 {
            1.1
        } else {
            0.0
        };
        assert!(
            speedup >= floor,
            "concurrent batch must beat the sequential loop by {floor}x on this \
             {cores}-core host, measured {speedup:.2}x"
        );
    }
}

#[test]
fn concurrent_inference_matches_sequential_on_a_trained_model() {
    // Serve the same requests through run_many and the blocking path on one
    // session from several threads; logits must agree bit-for-bit (same
    // kernels, same weights, no batch-dependent state).
    let insts = moderate_batch(6, 12, 3);
    let cfg = ModelConfig::tiny(ModelKind::TreeRnn, 1);
    let m = build_recursive(&cfg).unwrap();
    let sess = Arc::new(Session::new(Executor::with_threads(2), m).unwrap());
    let feeds_list = Dataset::feeds_per_instance(&insts);
    let sequential: Vec<Vec<f32>> = feeds_list
        .iter()
        .map(|f| sess.run(f.clone()).unwrap()[1].f32s().unwrap().to_vec())
        .collect();
    let mut joins = Vec::new();
    for _ in 0..4 {
        let sess = Arc::clone(&sess);
        let feeds_list = feeds_list.clone();
        let expect = sequential.clone();
        joins.push(std::thread::spawn(move || {
            let got = sess.run_many(feeds_list);
            for (r, want) in got.into_iter().zip(expect) {
                assert_eq!(r.unwrap()[1].f32s().unwrap(), &want[..]);
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}
