//! TD-TreeLSTM (paper §6.4.2, Table 3): runtime-dynamic structure.

use rdg_core::models::td::td_feeds;
use rdg_core::prelude::*;
use std::sync::Arc;

#[test]
fn recursive_and_iterative_td_agree_on_structure_and_state() {
    let cfg = TdConfig::tiny(4);
    let mr = build_td_recursive(&cfg).unwrap();
    let mi = build_td_iterative(&cfg).unwrap();
    let exec = Executor::with_threads(2);
    let sr = Session::new(Arc::clone(&exec), mr).unwrap();
    let si = Session::with_params(exec, mi, Arc::clone(sr.params())).unwrap();
    for seed in 0..5 {
        let feeds = td_feeds(&cfg, seed);
        let or = sr.run(feeds.clone()).unwrap();
        let oi = si.run(feeds).unwrap();
        assert_eq!(
            or[0].as_i32_scalar().unwrap(),
            oi[0].as_i32_scalar().unwrap(),
            "generated node counts must match (seed {seed})"
        );
    }
}

#[test]
fn generation_is_bounded_and_varies() {
    let cfg = TdConfig::tiny(1);
    let m = build_td_recursive(&cfg).unwrap();
    let s = Session::new(Executor::with_threads(2), m).unwrap();
    let mut counts = Vec::new();
    for w in 0..24 {
        let out = s.run(vec![Tensor::scalar_i32(w)]).unwrap();
        let n = out[0].as_i32_scalar().unwrap();
        assert!(n >= 1 && n <= cfg.max_nodes() as i32);
        counts.push(n);
    }
    let distinct: std::collections::HashSet<_> = counts.iter().collect();
    assert!(
        distinct.len() >= 3,
        "counts should vary with the seed word: {counts:?}"
    );
}

#[test]
fn deeper_caps_allow_larger_trees() {
    let mut small = TdConfig::tiny(1);
    small.max_depth = 2;
    small.threshold = 0.0; // expand whenever allowed
    let mut large = small.clone();
    large.max_depth = 4;

    let ms = build_td_recursive(&small).unwrap();
    let ml = build_td_recursive(&large).unwrap();
    let exec = Executor::with_threads(2);
    let ss = Session::new(Arc::clone(&exec), ms).unwrap();
    let sl = Session::with_params(exec, ml, Arc::clone(ss.params())).unwrap();
    let f = td_feeds(&small, 3);
    let ns = ss.run(f.clone()).unwrap()[0].as_i32_scalar().unwrap();
    let nl = sl.run(f).unwrap()[0].as_i32_scalar().unwrap();
    assert_eq!(ns, 7, "full depth-2 tree");
    assert_eq!(nl, 31, "full depth-4 tree");
}

#[test]
fn folding_cannot_express_td_models() {
    // Fold requires the complete tree structure before execution
    // (`FoldPlan::build` consumes parsed instances); TD-TreeLSTM's structure
    // exists only during execution. This is a design-level impossibility —
    // the assertion here documents the API asymmetry: fold plans are built
    // from `Instance` trees, while TD models take only seed words.
    let cfg = TdConfig::tiny(1);
    let m = build_td_recursive(&cfg).unwrap();
    // The TD module's only data inputs are the seed words (one per
    // instance): there is no tree to hand to the fold planner.
    assert_eq!(m.main.input_nodes.len(), cfg.batch);
}
