//! The paper's §6.2 claim: "our implementation calculates numerically
//! identical results as the iterative implementation".
//!
//! With shared parameters, all three implementations (recursive, iterative,
//! unrolled) must agree on forward losses/logits and on every parameter
//! gradient, for all three model families.

use rdg_core::prelude::*;
use std::sync::Arc;

fn tiny_dataset(batch: usize, seed: u64) -> (Vec<Tensor>, Vec<Instance>) {
    let d = Dataset::generate(DatasetConfig {
        vocab: 100,
        n_train: batch,
        n_valid: 0,
        min_len: 3,
        max_len: 10,
        seed,
        ..DatasetConfig::default()
    });
    let insts = d.split(Split::Train).to_vec();
    (Dataset::feeds_for(&insts), insts)
}

#[test]
fn forward_outputs_identical_across_implementations() {
    for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
        let cfg = ModelConfig::tiny(kind, 3);
        let (feeds, insts) = tiny_dataset(3, 99);

        let exec = Executor::with_threads(2);
        let rec = Session::new(Arc::clone(&exec), build_recursive(&cfg).unwrap()).unwrap();
        let itr = Session::with_params(
            Arc::clone(&exec),
            build_iterative(&cfg).unwrap(),
            Arc::clone(rec.params()),
        )
        .unwrap();
        let mut unr = UnrolledModel::new(cfg.clone()).unwrap();
        unr.set_params(Arc::clone(rec.params()));

        let out_rec = rec.run(feeds.clone()).unwrap();
        let out_itr = itr.run(feeds.clone()).unwrap();
        let (loss_unr, logits_unr) = unr.run_inference(&insts).unwrap();

        let loss_rec = out_rec[0].as_f32_scalar().unwrap();
        let loss_itr = out_itr[0].as_f32_scalar().unwrap();
        assert!(
            (loss_rec - loss_itr).abs() < 1e-5,
            "{kind:?}: losses differ: recursive {loss_rec} vs iterative {loss_itr}"
        );
        assert!(
            (loss_rec - loss_unr).abs() < 1e-5,
            "{kind:?}: losses differ: recursive {loss_rec} vs unrolled {loss_unr}"
        );
        assert!(
            out_rec[1].allclose(&out_itr[1], 1e-5),
            "{kind:?}: logits differ between recursive and iterative"
        );
        // Unrolled logits come one instance at a time.
        let rl = out_rec[1].f32s().unwrap();
        for (i, li) in logits_unr.iter().enumerate() {
            let lv = li.f32s().unwrap();
            for c in 0..cfg.classes {
                assert!(
                    (rl[i * cfg.classes + c] - lv[c]).abs() < 1e-4,
                    "{kind:?}: unrolled logits differ at instance {i}"
                );
            }
        }
    }
}

#[test]
fn gradients_identical_recursive_vs_iterative() {
    for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
        let cfg = ModelConfig::tiny(kind, 2);
        let (feeds, _) = tiny_dataset(2, 123);

        let m_rec = build_recursive(&cfg).unwrap();
        let m_itr = build_iterative(&cfg).unwrap();
        let t_rec = build_training_module(&m_rec, m_rec.main.outputs[0]).unwrap();
        let t_itr = build_training_module(&m_itr, m_itr.main.outputs[0]).unwrap();

        let exec = Executor::with_threads(2);
        let s_rec = Session::new(Arc::clone(&exec), t_rec).unwrap();
        let s_itr =
            Session::with_params(Arc::clone(&exec), t_itr, Arc::clone(s_rec.params())).unwrap();

        s_rec.run_training(feeds.clone()).unwrap();
        s_itr.run_training(feeds).unwrap();

        for (i, spec) in s_rec.module().params.iter().enumerate() {
            let pid = ParamId(i as u32);
            let gr = s_rec.grads().get(pid);
            let gi = s_itr.grads().get(pid);
            match (gr, gi) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!(
                        a.allclose(&b, 1e-3),
                        "{kind:?}: gradient of '{}' differs between implementations",
                        spec.name
                    );
                }
                (a, b) => {
                    // One side missing: the other must be (numerically) zero.
                    let present = a.or(b).unwrap();
                    let max = present
                        .f32s()
                        .unwrap()
                        .iter()
                        .fold(0.0f32, |m, &x| m.max(x.abs()));
                    assert!(
                        max < 1e-6,
                        "{kind:?}: gradient of '{}' present on one side only (max {max})",
                        spec.name
                    );
                }
            }
        }
    }
}

#[test]
fn gradients_identical_recursive_vs_unrolled() {
    let kind = ModelKind::TreeRnn;
    let cfg = ModelConfig::tiny(kind, 2);
    let (feeds, insts) = tiny_dataset(2, 7);

    let m_rec = build_recursive(&cfg).unwrap();
    let t_rec = build_training_module(&m_rec, m_rec.main.outputs[0]).unwrap();
    let s_rec = Session::new(Executor::with_threads(2), t_rec).unwrap();
    s_rec.run_training(feeds).unwrap();

    let mut unr = UnrolledModel::new(cfg).unwrap();
    unr.set_params(Arc::clone(s_rec.params()));
    let grads = rdg_core::exec::GradStore::new(unr.params().len());
    unr.run_training(&insts, &grads).unwrap();

    for (i, spec) in s_rec.module().params.iter().enumerate() {
        let pid = ParamId(i as u32);
        if let (Some(a), Some(b)) = (s_rec.grads().get(pid), grads.get(pid)) {
            assert!(
                a.allclose(&b, 1e-3),
                "gradient of '{}' differs between recursive and unrolled",
                spec.name
            );
        }
    }
}

#[test]
fn recursive_executor_stats_show_parallel_frames() {
    // The recursive implementation must actually fan out frames (the
    // mechanism behind the paper's speedups), unlike the strictly
    // chain-shaped iterative frames.
    let cfg = ModelConfig::tiny(ModelKind::TreeRnn, 1);
    let (feeds, _) = tiny_dataset(1, 5);
    let m = build_recursive(&cfg).unwrap();
    let s = Session::new(Executor::with_threads(2), m).unwrap();
    s.run(feeds).unwrap();
    let frames = s
        .executor()
        .stats()
        .frames_spawned
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(frames > 3, "tree recursion must spawn frames, saw {frames}");
}
