//! Fold (depth-wise dynamic batching) must compute the same function as the
//! recursive implementation: same logits, same loss, same gradients —
//! batching changes the schedule, not the math.

use rdg_core::fold::FoldEngine;
use rdg_core::prelude::*;
use std::sync::Arc;

fn tiny(batch: usize, seed: u64) -> (Vec<Tensor>, Vec<Instance>) {
    let d = Dataset::generate(DatasetConfig {
        vocab: 80,
        n_train: batch,
        n_valid: 0,
        min_len: 3,
        max_len: 12,
        seed,
        ..DatasetConfig::default()
    });
    let insts = d.split(Split::Train).to_vec();
    (Dataset::feeds_for(&insts), insts)
}

#[test]
fn fold_forward_matches_recursive() {
    for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
        let cfg = ModelConfig::tiny(kind, 4);
        let (feeds, insts) = tiny(4, 41);

        let rec = Session::new(Executor::with_threads(2), build_recursive(&cfg).unwrap()).unwrap();
        let mut fold = FoldEngine::new(cfg).unwrap();
        fold.set_params(Arc::clone(rec.params()));

        let out = rec.run(feeds).unwrap();
        let (fold_loss, fold_logits) = fold.infer(&insts).unwrap();

        let rec_loss = out[0].as_f32_scalar().unwrap();
        assert!(
            (rec_loss - fold_loss).abs() < 1e-4,
            "{kind:?}: loss differs: recursive {rec_loss} vs fold {fold_loss}"
        );
        assert!(
            out[1].allclose(&fold_logits, 1e-4),
            "{kind:?}: logits differ between recursive and fold"
        );
    }
}

#[test]
fn fold_gradients_match_recursive() {
    for kind in [ModelKind::TreeRnn, ModelKind::TreeLstm] {
        let cfg = ModelConfig::tiny(kind, 3);
        let (feeds, insts) = tiny(3, 42);

        let m = build_recursive(&cfg).unwrap();
        let t = build_training_module(&m, m.main.outputs[0]).unwrap();
        let rec = Session::new(Executor::with_threads(2), t).unwrap();
        rec.run_training(feeds).unwrap();

        let mut fold = FoldEngine::new(cfg).unwrap();
        fold.set_params(Arc::clone(rec.params()));
        let fold_grads = rdg_core::exec::GradStore::new(fold.params().len());
        fold.train_step(&insts, &fold_grads).unwrap();

        for (i, spec) in rec.module().params.iter().enumerate() {
            let pid = ParamId(i as u32);
            match (rec.grads().get(pid), fold_grads.get(pid)) {
                (Some(a), Some(b)) => {
                    assert!(
                        a.allclose(&b, 1e-3),
                        "{kind:?}: gradient of '{}' differs (fold vs recursive)",
                        spec.name
                    );
                }
                (None, None) => {}
                (a, b) => {
                    let present = a.or(b).unwrap();
                    let max = present
                        .f32s()
                        .unwrap()
                        .iter()
                        .fold(0.0f32, |m, &x| m.max(x.abs()));
                    assert!(max < 1e-6, "{kind:?}: '{}' one-sided gradient", spec.name);
                }
            }
        }
    }
}

#[test]
fn fold_batches_same_depth_nodes_together() {
    // Structural sanity: on balanced trees, level widths grow with batch.
    let d = Dataset::generate(DatasetConfig {
        vocab: 50,
        n_train: 8,
        n_valid: 0,
        min_len: 8,
        max_len: 8,
        shape: TreeShape::Balanced,
        ..DatasetConfig::default()
    });
    let plan = rdg_core::fold::FoldPlan::build(d.split(Split::Train));
    // 8 instances × 8 leaves: level 0 internals = 4 per tree × 8 = 32.
    assert_eq!(plan.levels[0].len(), 32);
    assert_eq!(
        plan.max_level_width(),
        64,
        "leaf level batches all 64 leaves"
    );
}
