//! Finite-difference gradient verification of the full models, end to end
//! through the recursive and iterative implementations.

use rdg_core::prelude::*;

fn tiny_feeds(batch: usize, seed: u64) -> Vec<Tensor> {
    let d = Dataset::generate(DatasetConfig {
        vocab: 60,
        n_train: batch,
        n_valid: 0,
        min_len: 3,
        max_len: 7,
        seed,
        ..DatasetConfig::default()
    });
    Dataset::feeds_for(d.split(Split::Train))
}

#[test]
fn recursive_models_gradcheck() {
    for kind in [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm] {
        let cfg = ModelConfig::tiny(kind, 1);
        let m = build_recursive(&cfg).unwrap();
        let feeds = tiny_feeds(1, 31);
        let report = check_gradients(&m, 0, &feeds, 1e-2, 6).unwrap();
        assert!(
            report.max_rel_err < 0.08,
            "{kind:?}: rel err {} (abs {}) over {} elements",
            report.max_rel_err,
            report.max_abs_err,
            report.n_checked
        );
    }
}

#[test]
fn iterative_models_gradcheck() {
    for kind in [ModelKind::TreeRnn, ModelKind::TreeLstm] {
        let cfg = ModelConfig::tiny(kind, 1);
        let m = build_iterative(&cfg).unwrap();
        let feeds = tiny_feeds(1, 32);
        let report = check_gradients(&m, 0, &feeds, 1e-2, 4).unwrap();
        assert!(
            report.max_rel_err < 0.08,
            "{kind:?} iterative: rel err {} over {} elements",
            report.max_rel_err,
            report.n_checked
        );
    }
}

#[test]
fn batched_recursive_gradcheck() {
    // Gradients accumulate correctly across concurrent batch instances.
    let cfg = ModelConfig::tiny(ModelKind::TreeRnn, 3);
    let m = build_recursive(&cfg).unwrap();
    let feeds = tiny_feeds(3, 33);
    let report = check_gradients(&m, 0, &feeds, 1e-2, 4).unwrap();
    assert!(
        report.max_rel_err < 0.08,
        "batched rel err {}",
        report.max_rel_err
    );
}
