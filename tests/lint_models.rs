//! The analyzer's false-positive and soundness contracts over shipped code.
//!
//! 1. Every built-in model — forward and training twin — and the quickstart
//!    fib module must analyze *completely* clean: zero errors, zero
//!    warnings. The lint gate in CI runs with `--deny-warnings`, so any
//!    false positive here would block every build.
//! 2. The static batchability prediction must be a superset of what the
//!    serving executor actually fuses: every node the plan marks fusable
//!    is predicted eligible.

use rdg::autodiff::build_training_module;
use rdg::exec::ModulePlan;
use rdg::graph::analyze::analyze_module;
use rdg::graph::{GraphRef, Module, NodeId, SubGraphId};
use rdg::models::{
    build_iterative, build_recursive, build_td_iterative, build_td_recursive, ModelConfig,
    ModelKind, TdConfig,
};
use std::sync::Arc;

fn zoo() -> Vec<(String, Module)> {
    let mut out = Vec::new();
    for (kind, kname) in [
        (ModelKind::TreeRnn, "tree-rnn"),
        (ModelKind::Rntn, "rntn"),
        (ModelKind::TreeLstm, "tree-lstm"),
    ] {
        let cfg = ModelConfig::tiny(kind, 4);
        for (style, m) in [
            ("rec", build_recursive(&cfg).unwrap()),
            ("itr", build_iterative(&cfg).unwrap()),
        ] {
            let t = build_training_module(&m, m.main.outputs[0]).unwrap();
            out.push((format!("{kname}-{style}"), m));
            out.push((format!("{kname}-{style}-train"), t));
        }
    }
    let td = TdConfig::tiny(4);
    for (name, m) in [
        ("td-rec", build_td_recursive(&td).unwrap()),
        ("td-itr", build_td_iterative(&td).unwrap()),
    ] {
        // TD outputs: [0] generated-node count (i32), [1] mean state (f32).
        let t = build_training_module(&m, m.main.outputs[1]).unwrap();
        out.push((name.to_string(), m));
        out.push((format!("{name}-train"), t));
    }
    out
}

#[test]
fn shipped_models_analyze_clean() {
    for (name, m) in zoo() {
        let report = analyze_module(&m);
        assert!(
            report.diagnostics.is_empty(),
            "{name}: expected zero diagnostics, got: {}",
            report
                .diagnostics
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

#[test]
fn batchability_prediction_covers_planned_fusion() {
    for (name, m) in zoo() {
        let report = analyze_module(&m);
        let plan = ModulePlan::new(Arc::new(m)).unwrap();

        let mut grefs = vec![GraphRef::Main];
        grefs.extend((0..plan.module.subgraphs.len()).map(|k| GraphRef::Sub(SubGraphId(k as u32))));
        let mut planned_fusable = 0usize;
        for gref in grefs {
            for (i, f) in plan.plan(gref).fuse.iter().enumerate() {
                if f.is_some() {
                    planned_fusable += 1;
                    assert!(
                        report.batchability.is_eligible(gref, NodeId(i as u32)),
                        "{name}: plan fuses {} node {i} but the analyzer did not predict it",
                        plan.module.graph_name(gref),
                    );
                }
            }
        }
        // Sanity: the recursive models must predict *some* fusable work,
        // otherwise the coverage metric is vacuous.
        if name.ends_with("rec") {
            assert!(
                planned_fusable > 0,
                "{name}: no fusable nodes planned at all"
            );
        }
    }
}

#[test]
fn recursive_models_report_hot_coverage() {
    for (name, m) in zoo() {
        let report = analyze_module(&m);
        if name.ends_with("-rec") || name.ends_with("-rec-train") {
            let cov = report.batchability.hot_coverage();
            assert!(
                cov > 0.0,
                "{name}: recursive model should have hot fusion coverage > 0"
            );
        }
    }
}
