//! Plan-specialization contracts: the compiler passes added for the
//! specializer (trivial-invoke inlining + hot-shape unrolling) must be
//! *invisible* except for speed.
//!
//! 1. **Bit-exactness** — a session running through the specializer
//!    produces byte-identical outputs (and, for training twins, identical
//!    `GradStore` contents) to a session pinned to the general frame
//!    path, on shared weights, across all three model families in both
//!    recursive and iterative form. Property-tested over dataset seeds.
//! 2. **Fuse-signature preservation** — every node a rewritten plan maps
//!    back to an original node (via [`ModulePlan::provenance`]) must have
//!    the same `analyze::fuse_class` and the same plan-level `FuseKind`,
//!    across the whole shipped-model zoo. A specialized node whose fuse
//!    signature drifted from its general-plan twin would silently drop
//!    out of cross-request fusion groups (`fused_fraction` collapses with
//!    no correctness signal).
//! 3. **Fallback** — an unobserved feed signature takes the general path
//!    and completes; promotion only ever swaps in a plan for signatures
//!    the profile has seen.

use proptest::prelude::*;
use rdg::exec::{ModulePlan, SpecializeOptions};
use rdg::graph::analyze::fuse_class;
use rdg::graph::GraphRef;
use rdg::prelude::*;
use std::sync::Arc;

fn tiny_dataset(batch: usize, seed: u64) -> Vec<Tensor> {
    let d = Dataset::generate(DatasetConfig {
        vocab: 100,
        n_train: batch,
        n_valid: 0,
        min_len: 3,
        max_len: 10,
        seed,
        ..DatasetConfig::default()
    });
    Dataset::feeds_for(&d.split(Split::Train).to_vec())
}

/// The shipped-model zoo: all three families × {recursive, iterative} ×
/// {forward, training}, the TD models, and the quickstart fib — the same
/// 17 modules the lint gate covers.
fn zoo() -> Vec<(String, Module)> {
    let mut out = Vec::new();
    for (kind, kname) in [
        (ModelKind::TreeRnn, "tree-rnn"),
        (ModelKind::Rntn, "rntn"),
        (ModelKind::TreeLstm, "tree-lstm"),
    ] {
        let cfg = ModelConfig::tiny(kind, 4);
        for (style, m) in [
            ("rec", build_recursive(&cfg).unwrap()),
            ("itr", build_iterative(&cfg).unwrap()),
        ] {
            let t = build_training_module(&m, m.main.outputs[0]).unwrap();
            out.push((format!("{kname}-{style}"), m));
            out.push((format!("{kname}-{style}-train"), t));
        }
    }
    let td = TdConfig::tiny(4);
    for (name, m) in [
        ("td-rec", build_td_recursive(&td).unwrap()),
        ("td-itr", build_td_iterative(&td).unwrap()),
    ] {
        let t = build_training_module(&m, m.main.outputs[1]).unwrap();
        out.push((name.to_string(), m));
        out.push((format!("{name}-train"), t));
    }
    out.push(("quickstart-fib".to_string(), fib_module()));
    out
}

/// The quickstart recursive fib (value-dependent `Cond`, doubly recursive).
fn fib_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let fib = mb.declare_subgraph("fib", &[DType::I32], &[DType::I32]);
    mb.define_subgraph(&fib, |b| {
        let n = b.input(0)?;
        let one = b.const_i32(1);
        let base = b.ile(n, one)?;
        let out = b.cond1(
            base,
            DType::I32,
            |b| b.identity(n),
            |b| {
                let a = b.isub(n, one)?;
                let two = b.const_i32(2);
                let c = b.isub(n, two)?;
                let fa = b.invoke(&fib, &[a])?[0];
                let fc = b.invoke(&fib, &[c])?[0];
                b.iadd(fa, fc)
            },
        )?;
        Ok(vec![out])
    })
    .expect("fib body");
    let n = mb.main_input(DType::I32);
    let out = mb.invoke(&fib, &[n]).expect("fib invoke")[0];
    mb.set_outputs(&[out]).expect("outputs");
    mb.finish().expect("fib module")
}

/// A main graph chaining `n` invokes of a straight-line "dense" SubGraph
/// (MatMul + AddBias + Tanh) — the canonical inline target, with fusable
/// ops inside the body so inlining must carry their fuse signatures.
fn dense_chain_module(n: usize) -> Module {
    let mut mb = ModuleBuilder::new();
    let w = mb
        .param_wire("w", Tensor::from_f32([4, 4], vec![0.1; 16]).unwrap())
        .unwrap();
    let bias = mb
        .param_wire("b", Tensor::from_f32([1, 4], vec![0.01; 4]).unwrap())
        .unwrap();
    let h = mb
        .subgraph("dense", &[DType::F32], &[DType::F32], |b| {
            let x = b.input(0)?;
            let y = b.matmul(x, w)?;
            let y = b.add_bias(y, bias)?;
            Ok(vec![b.tanh(y)?])
        })
        .unwrap();
    let mut x = mb.constant(Tensor::from_f32([1, 4], vec![1.0; 4]).unwrap());
    for _ in 0..n {
        x = mb.invoke(&h, &[x]).unwrap()[0];
    }
    mb.set_outputs(&[x]).unwrap();
    mb.finish().unwrap()
}

/// Asserts every provenance-mapped node of `spec`'s rewritten module has
/// the same analyzer fuse class and the same plan-level `FuseKind` as the
/// original node it came from. Returns the number of mapped nodes.
fn assert_fuse_signatures_preserved(
    name: &str,
    original: &Module,
    general: &ModulePlan,
    spec: &ModulePlan,
) -> usize {
    let Some(prov) = spec.provenance() else {
        return 0;
    };
    let mut mapped = 0usize;
    for (gref, nodes) in prov {
        for (idx, entry) in nodes.iter().enumerate() {
            let Some((ogref, onode)) = entry else {
                continue;
            };
            mapped += 1;
            let new_op = &spec.module.graph(*gref).nodes[idx].op;
            let old_op = &original.graph(*ogref).nodes[onode.0 as usize].op;
            assert_eq!(
                fuse_class(new_op),
                fuse_class(old_op),
                "{name}: fuse_class drifted at {} node {idx} \
                 (from {} node {})",
                spec.module.graph_name(*gref),
                original.graph_name(*ogref),
                onode.0,
            );
            let new_fuse = spec.plan(*gref).fuse[idx];
            let old_fuse = general.plan(*ogref).fuse[onode.0 as usize];
            assert_eq!(
                new_fuse,
                old_fuse,
                "{name}: plan-level FuseKind drifted at {} node {idx} — \
                 the specialized twin would drop out of fusion groups",
                spec.module.graph_name(*gref),
            );
        }
    }
    mapped
}

/// Satellite regression: `fuse_class` agreement between specialized and
/// general plans across the entire shipped-model zoo.
#[test]
fn inlining_preserves_fuse_signatures_across_the_zoo() {
    for (name, m) in zoo() {
        let original = m.clone();
        let general =
            ModulePlan::with_options(Arc::new(m.clone()), SpecializeOptions::disabled()).unwrap();
        let spec = ModulePlan::with_options(
            Arc::new(m),
            SpecializeOptions {
                unroll: false,
                ..SpecializeOptions::default()
            },
        )
        .unwrap();
        assert_fuse_signatures_preserved(&name, &original, &general, &spec);
    }
    // Non-vacuity: a module built around an inlinable fusable body must
    // actually inline and must map its MatMul/AddBias nodes.
    let m = dense_chain_module(8);
    let original = m.clone();
    let general =
        ModulePlan::with_options(Arc::new(m.clone()), SpecializeOptions::disabled()).unwrap();
    let spec = ModulePlan::with_options(
        Arc::new(m),
        SpecializeOptions {
            unroll: false,
            ..SpecializeOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        spec.spec_stats().inlined_invokes,
        8,
        "every dense invoke should inline"
    );
    let mapped = assert_fuse_signatures_preserved("dense-chain", &original, &general, &spec);
    assert!(
        mapped >= 8 * 3,
        "inlined bodies should map their ops through provenance, got {mapped}"
    );
}

/// Hot-shape promotion preserves fuse signatures too: promote fib, then
/// walk the promoted plan's provenance against the original module.
#[test]
fn promoted_plans_preserve_fuse_signatures() {
    let m = fib_module();
    let original = m.clone();
    let general =
        ModulePlan::with_options(Arc::new(m.clone()), SpecializeOptions::disabled()).unwrap();
    let exec = Executor::with_threads(2);
    let sess = Session::with_options(Arc::clone(&exec), m, SpecializeOptions::default()).unwrap();
    let feeds = vec![Tensor::scalar_i32(10)];
    for _ in 0..3 {
        sess.run(feeds.clone()).unwrap();
    }
    let stats = sess.plan().spec_stats();
    assert!(
        stats.promotions >= 1,
        "fib(10) should promote after {} runs: {stats:?}",
        3
    );
    let (promoted, key) = sess.plan().resolve_for_feeds(&feeds);
    assert!(key.is_none(), "a promoted signature resolves with no key");
    assert!(
        !Arc::ptr_eq(&promoted, sess.plan()),
        "promotion swaps in a distinct plan"
    );
    assert_fuse_signatures_preserved("fib-promoted", &original, &general, &promoted);
}

/// Tentpole correctness: fib through the specializer (which constant-folds
/// the whole recursion at plan time) equals fib through the general frame
/// machinery, and an *unobserved* signature still completes via fallback.
#[test]
fn fib_specialized_matches_general_and_falls_back_on_new_shapes() {
    let exec = Executor::with_threads(2);
    let gen = Session::with_options(
        Arc::clone(&exec),
        fib_module(),
        SpecializeOptions::disabled(),
    )
    .unwrap();
    let spec = Session::with_options(
        Arc::clone(&exec),
        fib_module(),
        SpecializeOptions::default(),
    )
    .unwrap();
    for n in [1i32, 2, 7, 12] {
        let feeds = vec![Tensor::scalar_i32(n)];
        let want = gen.run(feeds.clone()).unwrap()[0].i32s().unwrap()[0];
        for run in 0..4 {
            let got = spec.run(feeds.clone()).unwrap()[0].i32s().unwrap()[0];
            assert_eq!(got, want, "fib({n}) diverged on run {run}");
        }
    }
    let stats = spec.plan().spec_stats();
    assert!(
        stats.promotions >= 1 && stats.hits >= 1,
        "repeated fib signatures should promote and hit: {stats:?}"
    );
    assert!(
        stats.folded_ops > 0,
        "fib unrolling should constant-fold the recursion: {stats:?}"
    );
    // Fallback: a signature never seen before resolves to the general
    // plan (key present, same Arc) and completes correctly.
    let fresh = vec![Tensor::scalar_i32(13)];
    let (plan, key) = spec.plan().resolve_for_feeds(&fresh);
    assert!(key.is_some(), "unobserved shape must carry a profile key");
    assert!(
        Arc::ptr_eq(&plan, spec.plan()),
        "unobserved shape must take the general plan"
    );
    let want = gen.run(fresh.clone()).unwrap()[0].i32s().unwrap()[0];
    assert_eq!(spec.run(fresh).unwrap()[0].i32s().unwrap()[0], want);
}

/// Bitwise output equality between a pinned-general and a specializing
/// session on shared weights, for one (module, feeds) pair. The spec
/// session runs `rounds` times so later runs cross the promotion
/// threshold and execute the promoted plan if one exists.
fn assert_outputs_bit_identical(name: &str, m: Module, feeds: Vec<Tensor>, rounds: usize) {
    let exec = Executor::with_threads(2);
    let gen = Session::with_options(Arc::clone(&exec), m.clone(), {
        SpecializeOptions::disabled()
    })
    .unwrap();
    let spec = Session::with_params_options(
        Arc::clone(&exec),
        m,
        Arc::clone(gen.params()),
        SpecializeOptions::default(),
    )
    .unwrap();
    let want = gen.run(feeds.clone()).unwrap();
    for round in 0..rounds {
        let got = spec.run(feeds.clone()).unwrap();
        assert_eq!(got.len(), want.len(), "{name}: output arity");
        for (i, (a, b)) in want.iter().zip(got.iter()).enumerate() {
            assert_eq!(a.dtype(), b.dtype(), "{name}: output {i} dtype");
            assert_eq!(
                a.shape().dims(),
                b.shape().dims(),
                "{name}: output {i} shape (round {round})"
            );
            match a.dtype() {
                DType::F32 => assert_eq!(
                    a.f32s().unwrap(),
                    b.f32s().unwrap(),
                    "{name}: output {i} not bit-identical (round {round})"
                ),
                DType::I32 => assert_eq!(
                    a.i32s().unwrap(),
                    b.i32s().unwrap(),
                    "{name}: output {i} not bit-identical (round {round})"
                ),
            }
        }
    }
}

/// Identical `GradStore` contents between a pinned-general and a
/// specializing session on shared weights. Single-threaded executor so
/// accumulation order is deterministic and the comparison can be bitwise.
fn assert_grads_bit_identical(name: &str, m: &Module, feeds: Vec<Tensor>) {
    let t = build_training_module(m, m.main.outputs[0]).unwrap();
    let exec = Executor::with_threads(1);
    let gen = Session::with_options(Arc::clone(&exec), t.clone(), {
        SpecializeOptions::disabled()
    })
    .unwrap();
    let spec = Session::with_params_options(
        Arc::clone(&exec),
        t,
        Arc::clone(gen.params()),
        SpecializeOptions::default(),
    )
    .unwrap();
    gen.run_training(feeds.clone()).unwrap();
    spec.run_training(feeds).unwrap();
    for (i, p) in gen.module().params.iter().enumerate() {
        let pid = ParamId(i as u32);
        match (gen.grads().get(pid), spec.grads().get(pid)) {
            (None, None) => {}
            (Some(a), Some(b)) => assert_eq!(
                a.f32s().unwrap(),
                b.f32s().unwrap(),
                "{name}: gradient of '{}' not bit-identical",
                p.name
            ),
            _ => panic!("{name}: gradient of '{}' present on one side only", p.name),
        }
    }
}

/// All three model families, indexed by a property-test seed so the 48
/// generated cases spread evenly across kinds.
fn kind_for(seed: u64) -> ModelKind {
    [ModelKind::TreeRnn, ModelKind::Rntn, ModelKind::TreeLstm][(seed % 3) as usize]
}

proptest! {
    /// Satellite property: specialized/unrolled plans are bit-identical
    /// to the general frame path (both model styles, shared weights) over
    /// random datasets.
    #[test]
    fn specialized_outputs_bit_identical((seed, batch) in (0u64..10_000, 1usize..4)) {
        let kind = kind_for(seed);
        let cfg = ModelConfig::tiny(kind, batch);
        let feeds = tiny_dataset(batch, seed);
        assert_outputs_bit_identical(
            &format!("{kind:?}-rec"),
            build_recursive(&cfg).unwrap(),
            feeds.clone(),
            4,
        );
        assert_outputs_bit_identical(
            &format!("{kind:?}-itr"),
            build_iterative(&cfg).unwrap(),
            feeds,
            4,
        );
    }

    /// Satellite property: training twins accumulate identical gradients
    /// through the specializer.
    #[test]
    fn specialized_grads_bit_identical(seed in 0u64..10_000) {
        let kind = kind_for(seed);
        let cfg = ModelConfig::tiny(kind, 2);
        let feeds = tiny_dataset(2, seed);
        assert_grads_bit_identical(
            &format!("{kind:?}-rec"),
            &build_recursive(&cfg).unwrap(),
            feeds.clone(),
        );
        assert_grads_bit_identical(
            &format!("{kind:?}-itr"),
            &build_iterative(&cfg).unwrap(),
            feeds,
        );
    }
}

/// Inlined plans must still fuse in the *executor*: the dense-chain module
/// runs with identical results whether or not its invokes were spliced,
/// and the spliced plan reports every invoke gone.
#[test]
fn inlined_dense_chain_runs_bit_identical() {
    assert_outputs_bit_identical("dense-chain-100", dense_chain_module(100), vec![], 3);
    let spec = ModulePlan::with_options(
        Arc::new(dense_chain_module(100)),
        SpecializeOptions {
            unroll: false,
            ..SpecializeOptions::default()
        },
    )
    .unwrap();
    assert_eq!(spec.spec_stats().inlined_invokes, 100);
}

/// `GraphRef::Main` must appear in provenance whenever main was rewritten
/// — downstream consumers (the fuse regression above) key on it.
#[test]
fn provenance_covers_rewritten_main() {
    let spec = ModulePlan::with_options(
        Arc::new(dense_chain_module(4)),
        SpecializeOptions {
            unroll: false,
            ..SpecializeOptions::default()
        },
    )
    .unwrap();
    let prov = spec.provenance().expect("inlining rewrote main");
    let main = prov.get(&GraphRef::Main).expect("main provenance");
    assert_eq!(main.len(), spec.module.main.nodes.len());
}
