//! End-to-end training: the models must actually learn the synthetic
//! sentiment task (the property Figure 9 depends on).

use rdg_core::nn::metrics::accuracy;
use rdg_core::prelude::*;
use std::sync::Arc;

fn dataset(n_train: usize, n_valid: usize) -> Dataset {
    Dataset::generate(DatasetConfig {
        vocab: 60,
        n_train,
        n_valid,
        min_len: 3,
        max_len: 6,
        seed: 77,
        ..DatasetConfig::default()
    })
}

fn eval_accuracy(session: &Session, data: &Dataset, batch: usize) -> f32 {
    let mut correct = 0.0f32;
    let mut total = 0.0f32;
    for chunk in data.batches(Split::Valid, batch) {
        let feeds = Dataset::feeds_for(chunk);
        let outs = session.run(feeds).unwrap();
        let labels: Vec<i32> = chunk.iter().map(|i| i.label).collect();
        let labels = Tensor::from_i32([labels.len()], labels).unwrap();
        correct += accuracy(&outs[1], &labels).unwrap() * chunk.len() as f32;
        total += chunk.len() as f32;
    }
    correct / total
}

#[test]
fn recursive_treernn_learns_the_task() {
    // Generalization needs enough sentences per vocabulary word (the
    // paper trains on the full Large Movie Review corpus); 1200 short
    // synthetic sentences over 60 words reach ~0.85 validation accuracy
    // within two epochs.
    let data = dataset(1200, 160);
    let batch = 8;
    let mut cfg = ModelConfig::tiny(ModelKind::TreeRnn, batch);
    cfg.hidden = 10;
    cfg.embed = 6;
    cfg.vocab = 60;
    let m = build_recursive(&cfg).unwrap();
    let train = build_training_module(&m, m.main.outputs[0]).unwrap();

    let exec = Executor::with_threads(2);
    let train_sess = Session::new(Arc::clone(&exec), train).unwrap();
    let infer_sess = Session::with_params(exec, m, Arc::clone(train_sess.params())).unwrap();

    let acc_before = eval_accuracy(&infer_sess, &data, batch);
    let mut trainer = Trainer::new(train_sess, Adagrad::new(0.05));
    let mut first_loss = None;
    let mut last_loss = 0.0;
    for epoch in 0..2 {
        for chunk in data.batches(Split::Train, batch) {
            let feeds = Dataset::feeds_for(chunk);
            last_loss = trainer.step(feeds).unwrap();
            first_loss.get_or_insert(last_loss);
        }
        let _ = epoch;
    }
    let acc_after = eval_accuracy(&infer_sess, &data, batch);
    assert!(
        last_loss < first_loss.unwrap(),
        "loss must decrease: {first_loss:?} → {last_loss}"
    );
    assert!(
        acc_after > acc_before.max(0.7),
        "validation accuracy must improve materially: {acc_before:.3} → {acc_after:.3}"
    );
}

#[test]
fn recursive_and_iterative_training_trajectories_match() {
    // Same parameters + same batches ⇒ the two implementations' losses must
    // track each other step for step (the premise of Figure 9's
    // "accuracy improvement per epoch is the same").
    let data = dataset(32, 8);
    let batch = 4;
    let mut cfg = ModelConfig::tiny(ModelKind::TreeRnn, batch);
    cfg.vocab = 60;

    let m_rec = build_recursive(&cfg).unwrap();
    let m_itr = build_iterative(&cfg).unwrap();
    let t_rec = build_training_module(&m_rec, m_rec.main.outputs[0]).unwrap();
    let t_itr = build_training_module(&m_itr, m_itr.main.outputs[0]).unwrap();

    let exec = Executor::with_threads(2);
    // Two *independent* stores initialized identically.
    let s_rec = Session::new(Arc::clone(&exec), t_rec).unwrap();
    let s_itr = Session::new(Arc::clone(&exec), t_itr).unwrap();
    let mut tr_rec = Trainer::new(s_rec, Sgd::new(0.05));
    let mut tr_itr = Trainer::new(s_itr, Sgd::new(0.05));

    for chunk in data.batches(Split::Train, batch).take(6) {
        let feeds = Dataset::feeds_for(chunk);
        let lr = tr_rec.step(feeds.clone()).unwrap();
        let li = tr_itr.step(feeds).unwrap();
        assert!(
            (lr - li).abs() < 1e-3,
            "per-step losses must match: recursive {lr} vs iterative {li}"
        );
    }
}
